(** POOL evaluator.

    A tree-walking evaluator over {!Pmodel.Value.t}.  Queries run
    against the object layer; relationship navigation and graph
    operators delegate to {!Pgraph}.  The [in context] clause scopes
    relationship navigation to one classification (thesis 4.6.2,
    5.1.1.3); an explicit [null] context argument escapes the scope.

    Query optimisation (thesis 6.1.5): when the WHERE clause contains
    an equality between an attribute of the first range variable and a
    constant, and a secondary index exists on that (class, attribute),
    the extent scan is replaced by an index probe. *)

open Pmodel
module OidSet = Database.OidSet

exception Eval_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

type state = {
  db : Database.t;
  mutable ctx : int option; (* current classification context *)
  mutable index_probes : int; (* statistics, for tests and ablation *)
  mutable extent_scans : int;
}

let make_state db = { db; ctx = None; index_probes = 0; extent_scans = 0 }

type env = (string * Value.t) list

(* --- helpers -------------------------------------------------------- *)

let elements = function
  | Value.VList l | Value.VSet l | Value.VBag l -> l
  | Value.VNull -> []
  | v -> [ v ]

let collection_or_singleton = function
  | (Value.VList _ | Value.VSet _ | Value.VBag _ | Value.VNull) as v -> elements v
  | v -> [ v ]

let refs_of_oidset s = Value.vset (List.map (fun o -> Value.VRef o) (OidSet.elements s))
let refs_of_objs objs = Value.VList (List.map (fun (o : Obj.t) -> Value.VRef o.Obj.oid) objs)

(* SQL LIKE matching: '%' = any sequence, '_' = any single char. *)
let like_match (s : string) (pat : string) : bool =
  let n = String.length s and m = String.length pat in
  (* dp.(j) = pattern prefix j matches current string prefix *)
  let dp = Array.make (m + 1) false in
  dp.(0) <- true;
  for j = 1 to m do
    dp.(j) <- dp.(j - 1) && pat.[j - 1] = '%'
  done;
  for i = 1 to n do
    let prev_diag = ref dp.(0) in
    dp.(0) <- false;
    for j = 1 to m do
      let cur = dp.(j) in
      (dp.(j) <-
         (match pat.[j - 1] with
         | '%' -> dp.(j - 1) || dp.(j) (* match empty or extend *)
         | '_' -> !prev_diag
         | c -> !prev_diag && c = s.[i - 1]));
      prev_diag := cur
    done
  done;
  dp.(m)

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let ends_with ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

let contains_sub s sub =
  let ls = String.length s and lx = String.length sub in
  let rec go i = i + lx <= ls && (String.sub s i lx = sub || go (i + 1)) in
  lx = 0 || go 0

(* --- evaluation ------------------------------------------------------ *)

let rec eval (st : state) (env : env) (e : Ast.expr) : Value.t =
  match e with
  | Ast.Lit v -> v
  | Ast.Var x -> (
      match List.assoc_opt x env with
      | Some v -> v
      | None ->
          let schema = Database.schema st.db in
          if Meta.is_class schema x || Meta.is_rel schema x then begin
            st.extent_scans <- st.extent_scans + 1;
            refs_of_oidset (Database.extent st.db x)
          end
          else fail "unbound variable or unknown class: %s" x)
  | Ast.Path (e, attr) -> eval_path st (eval st env e) attr
  | Ast.Unop ("not", e) -> Value.VBool (not (Value.as_bool (eval st env e)))
  | Ast.Unop ("-", e) -> (
      match eval st env e with
      | Value.VInt i -> Value.VInt (-i)
      | Value.VFloat f -> Value.VFloat (-.f)
      | v -> fail "cannot negate %a" Value.pp v)
  | Ast.Unop (op, _) -> fail "unknown unary operator %s" op
  | Ast.Binop ("and", a, b) ->
      Value.VBool (Value.as_bool (eval st env a) && Value.as_bool (eval st env b))
  | Ast.Binop ("or", a, b) ->
      Value.VBool (Value.as_bool (eval st env a) || Value.as_bool (eval st env b))
  | Ast.Binop (op, a, b) -> eval_binop st op (eval st env a) (eval st env b)
  | Ast.Downcast (cls, e) -> eval_downcast st cls (eval st env e)
  | Ast.Call (f, args) -> eval_call st env f args
  | Ast.Select s -> eval_select st env s

and eval_path st (recv : Value.t) attr : Value.t =
  match recv with
  | Value.VRef oid -> eval_obj_attr st oid attr
  | Value.VList _ | Value.VSet _ | Value.VBag _ ->
      let results =
        List.concat_map
          (fun v -> collection_or_singleton (eval_path st v attr))
          (elements recv)
      in
      Value.VList results
  | Value.VNull -> Value.VNull
  | v -> fail "cannot navigate .%s on %a" attr Value.pp v

and eval_obj_attr st oid attr : Value.t =
  let o = Database.get_exn st.db oid in
  (* uniform treatment of relationship instances: their endpoints are
     plain navigable attributes *)
  if Database.is_rel_instance st.db o then
    match attr with
    | "origin" -> Value.VRef (Obj.origin o)
    | "destination" -> Value.VRef (Obj.destination o)
    | "context" -> ( match Obj.context o with Some c -> Value.VRef c | None -> Value.VNull)
    | _ -> Database.get_attr st.db oid attr
  else Database.get_attr st.db oid attr

and eval_binop _st op (a : Value.t) (b : Value.t) : Value.t =
  match op with
  | "=" -> Value.VBool (Value.equal_value a b)
  | "!=" -> Value.VBool (not (Value.equal_value a b))
  | "<" -> Value.VBool (Value.compare_value a b < 0)
  | "<=" -> Value.VBool (Value.compare_value a b <= 0)
  | ">" -> Value.VBool (Value.compare_value a b > 0)
  | ">=" -> Value.VBool (Value.compare_value a b >= 0)
  | "in" -> Value.VBool (List.exists (Value.equal_value a) (elements b))
  | "like" -> Value.VBool (like_match (Value.as_string a) (Value.as_string b))
  | "union" -> Value.vset (elements a @ elements b)
  | "inter" ->
      let eb = elements b in
      Value.vset (List.filter (fun x -> List.exists (Value.equal_value x) eb) (elements a))
  | "except" ->
      let eb = elements b in
      Value.vset (List.filter (fun x -> not (List.exists (Value.equal_value x) eb)) (elements a))
  | "+" | "-" | "*" | "/" | "mod" -> eval_arith op a b
  | _ -> fail "unknown operator %s" op

and eval_arith op a b =
  match (op, a, b) with
  | "+", Value.VString x, Value.VString y -> Value.VString (x ^ y)
  | _, Value.VInt x, Value.VInt y -> (
      match op with
      | "+" -> Value.VInt (x + y)
      | "-" -> Value.VInt (x - y)
      | "*" -> Value.VInt (x * y)
      | "/" -> if y = 0 then fail "division by zero" else Value.VInt (x / y)
      | "mod" -> if y = 0 then fail "division by zero" else Value.VInt (x mod y)
      | _ -> assert false)
  | _, (Value.VInt _ | Value.VFloat _), (Value.VInt _ | Value.VFloat _) -> (
      let x = Value.as_float a and y = Value.as_float b in
      match op with
      | "+" -> Value.VFloat (x +. y)
      | "-" -> Value.VFloat (x -. y)
      | "*" -> Value.VFloat (x *. y)
      | "/" -> Value.VFloat (x /. y)
      | "mod" -> Value.VFloat (Float.rem x y)
      | _ -> assert false)
  | _ -> fail "cannot apply %s to %a and %a" op Value.pp a Value.pp b

and eval_downcast st cls (v : Value.t) : Value.t =
  let schema = Database.schema st.db in
  if not (Meta.is_class schema cls || Meta.is_rel schema cls) then fail "unknown class %s in downcast" cls;
  let keep = function
    | Value.VRef oid -> (
        match Database.class_of st.db oid with
        | Some c -> Meta.is_subclass schema ~sub:c ~super:cls
        | None -> false)
    | _ -> false
  in
  match v with
  | Value.VRef _ -> if keep v then v else Value.VNull
  | Value.VList l -> Value.VList (List.filter keep l)
  | Value.VSet l -> Value.vset (List.filter keep l)
  | Value.VBag l -> Value.vbag (List.filter keep l)
  | Value.VNull -> Value.VNull
  | v -> fail "cannot downcast %a" Value.pp v

and ctx_arg st (args : Value.t list) (expected_before : int) : int option =
  (* Relationship builtins accept an optional trailing context argument:
     absent -> current query context; VNull -> explicitly unscoped. *)
  if List.length args > expected_before then
    match List.nth args expected_before with
    | Value.VRef c -> Some c
    | Value.VNull -> None
    | v -> fail "context argument must be a context reference, got %a" Value.pp v
  else st.ctx

and eval_call st env f (arg_exprs : Ast.expr list) : Value.t =
  let args = lazy (List.map (eval st env) arg_exprs) in
  let arg n =
    let l = Lazy.force args in
    if n < List.length l then List.nth l n else fail "%s: missing argument %d" f (n + 1)
  in
  let oid_arg n = Value.as_ref (arg n) in
  let str_arg n = Value.as_string (arg n) in
  let int_arg n = Value.as_int (arg n) in
  let nargs () = List.length (Lazy.force args) in
  match f with
  (* collection builders *)
  | "list" -> Value.VList (Lazy.force args)
  | "set" -> Value.vset (Lazy.force args)
  | "bag" -> Value.vbag (Lazy.force args)
  | "elements" -> Value.VList (List.concat_map elements (elements (arg 0)))
  | "unique" -> Value.vset (elements (arg 0))
  | "first" -> ( match elements (arg 0) with [] -> Value.VNull | x :: _ -> x)
  | "isempty" -> Value.VBool (elements (arg 0) = [])
  | "exists" -> Value.VBool (elements (arg 0) <> [])
  | "isnull" -> Value.VBool (Value.is_null (arg 0))
  (* aggregates *)
  | "count" -> Value.VInt (List.length (elements (arg 0)))
  | "sum" ->
      List.fold_left (fun acc v -> eval_arith "+" acc v) (Value.VInt 0) (elements (arg 0))
  | "avg" -> (
      match elements (arg 0) with
      | [] -> Value.VNull
      | l ->
          let s = List.fold_left (fun acc v -> acc +. Value.as_float v) 0. l in
          Value.VFloat (s /. float_of_int (List.length l)))
  | "min" -> (
      match elements (arg 0) with
      | [] -> Value.VNull
      | x :: rest -> List.fold_left (fun a b -> if Value.compare_value b a < 0 then b else a) x rest)
  | "max" -> (
      match elements (arg 0) with
      | [] -> Value.VNull
      | x :: rest -> List.fold_left (fun a b -> if Value.compare_value b a > 0 then b else a) x rest)
  (* object introspection *)
  | "oid" -> Value.VInt (oid_arg 0)
  | "class_of" -> (
      match Database.class_of st.db (oid_arg 0) with
      | Some c -> Value.VString c
      | None -> Value.VNull)
  | "attr" -> Database.get_attr st.db (oid_arg 0) (str_arg 1)
  | "has_role" -> Value.VBool (Database.has_role st.db (oid_arg 0) ~rel_name:(str_arg 1))
  (* relationship navigation (uniform treatment, thesis 5.1.1.2) *)
  | "out" ->
      refs_of_objs (Database.outgoing st.db ?context:(ctx_arg st (Lazy.force args) 2) ~rel_name:(str_arg 1) (oid_arg 0))
  | "into" ->
      refs_of_objs (Database.incoming st.db ?context:(ctx_arg st (Lazy.force args) 2) ~rel_name:(str_arg 1) (oid_arg 0))
  | "targets" ->
      Value.VList
        (List.map
           (fun (r : Obj.t) -> Value.VRef (Obj.destination r))
           (Database.outgoing st.db ?context:(ctx_arg st (Lazy.force args) 2) ~rel_name:(str_arg 1) (oid_arg 0)))
  | "sources" ->
      Value.VList
        (List.map
           (fun (r : Obj.t) -> Value.VRef (Obj.origin r))
           (Database.incoming st.db ?context:(ctx_arg st (Lazy.force args) 2) ~rel_name:(str_arg 1) (oid_arg 0)))
  | "origin" -> Value.VRef (Obj.origin (Database.get_exn st.db (oid_arg 0)))
  | "destination" -> Value.VRef (Obj.destination (Database.get_exn st.db (oid_arg 0)))
  | "context_of" -> (
      match Obj.context (Database.get_exn st.db (oid_arg 0)) with
      | Some c -> Value.VRef c
      | None -> Value.VNull)
  (* graph exploration and extraction (thesis 5.1.1.3) *)
  | "traverse" ->
      let ctx = ctx_arg st (Lazy.force args) 4 in
      let max_depth = match arg 3 with Value.VNull -> None | v -> Some (Value.as_int v) in
      refs_of_oidset
        (Pgraph.Traverse.descendants st.db ?context:ctx ~min_depth:(int_arg 2) ?max_depth
           ~rel:(str_arg 1) (oid_arg 0))
  | "closure" ->
      refs_of_oidset
        (Pgraph.Traverse.closure st.db ?context:(ctx_arg st (Lazy.force args) 2) ~rel:(str_arg 1) (oid_arg 0))
  | "descendants" ->
      refs_of_oidset
        (Pgraph.Traverse.descendants st.db ?context:(ctx_arg st (Lazy.force args) 2) ~rel:(str_arg 1) (oid_arg 0))
  | "ancestors" ->
      refs_of_oidset
        (Pgraph.Traverse.ancestors st.db ?context:(ctx_arg st (Lazy.force args) 2) ~rel:(str_arg 1) (oid_arg 0))
  | "reachable" ->
      Value.VBool
        (Pgraph.Traverse.reachable st.db ?context:(ctx_arg st (Lazy.force args) 3) ~rel:(str_arg 2) (oid_arg 0)
           (oid_arg 1))
  | "path" -> (
      match
        Pgraph.Traverse.shortest_path st.db ?context:(ctx_arg st (Lazy.force args) 3) ~rel:(str_arg 2)
          (oid_arg 0) (oid_arg 1)
      with
      | Some p -> Value.VList (List.map (fun o -> Value.VRef o) p)
      | None -> Value.VNull)
  | "graph" ->
      let g =
        Pgraph.Subgraph.extract st.db ?context:(ctx_arg st (Lazy.force args) 2) ~rel:(str_arg 1) (oid_arg 0)
      in
      Value.VList
        [ refs_of_oidset g.Pgraph.Subgraph.nodes;
          Value.vset (List.map (fun o -> Value.VRef o) g.Pgraph.Subgraph.edges) ]
  | "nodes" -> (
      match elements (arg 0) with [ ns; _ ] -> ns | _ -> fail "nodes: expected a graph value")
  | "edges" -> (
      match elements (arg 0) with [ _; es ] -> es | _ -> fail "edges: expected a graph value")
  (* instance synonyms (thesis 4.5) *)
  | "synonyms" -> refs_of_oidset (Database.synonym_set st.db (oid_arg 0))
  | "same_entity" -> Value.VBool (Database.same_entity st.db (oid_arg 0) (oid_arg 1))
  (* strings *)
  | "strlen" -> Value.VInt (String.length (str_arg 0))
  | "lower" -> Value.VString (String.lowercase_ascii (str_arg 0))
  | "upper" -> Value.VString (String.uppercase_ascii (str_arg 0))
  | "startswith" -> Value.VBool (starts_with ~prefix:(str_arg 1) (str_arg 0))
  | "endswith" -> Value.VBool (ends_with ~suffix:(str_arg 1) (str_arg 0))
  | "contains" -> Value.VBool (contains_sub (str_arg 0) (str_arg 1))
  (* dates and numbers *)
  | "date" -> Value.VDate (Value.date ~month:(int_arg 1) ~day:(int_arg 2) (int_arg 0))
  | "year" -> ( match arg 0 with Value.VDate d -> Value.VInt d.Value.year | _ -> Value.VNull)
  | "month" -> ( match arg 0 with Value.VDate d -> Value.VInt d.Value.month | _ -> Value.VNull)
  | "day" -> ( match arg 0 with Value.VDate d -> Value.VInt d.Value.day | _ -> Value.VNull)
  | "abs" -> (
      match arg 0 with
      | Value.VInt i -> Value.VInt (abs i)
      | Value.VFloat f -> Value.VFloat (Float.abs f)
      | v -> fail "abs: not a number: %a" Value.pp v)
  | _ ->
      ignore (nargs ());
      fail "unknown function %s" f

(* --- select ----------------------------------------------------------- *)

(** Try to satisfy the first range via an index probe: look for a
    top-level conjunct [var.attr = constant] in the WHERE clause. *)
and index_probe st (s : Ast.select) : OidSet.t option =
  match (s.Ast.ranges, s.Ast.where) with
  | (Ast.Var cls, var) :: _, Some w when Meta.is_class (Database.schema st.db) cls ->
      let rec conjuncts e =
        match e with Ast.Binop ("and", a, b) -> conjuncts a @ conjuncts b | e -> [ e ]
      in
      let probe_of = function
        | Ast.Binop ("=", Ast.Path (Ast.Var v, attr), Ast.Lit value)
        | Ast.Binop ("=", Ast.Lit value, Ast.Path (Ast.Var v, attr))
          when v = var ->
            Some (attr, value)
        | _ -> None
      in
      List.find_map
        (fun c ->
          match probe_of c with
          | Some (attr, value) -> (
              match Database.index_lookup st.db cls attr value with
              | Some oids ->
                  st.index_probes <- st.index_probes + 1;
                  Some oids
              | None -> None)
          | None -> None)
        (conjuncts w)
  | _ -> None

and eval_select st (env : env) (s : Ast.select) : Value.t =
  let saved_ctx = st.ctx in
  (match s.Ast.context with
  | Some c -> (
      match eval st env c with
      | Value.VRef ctx -> st.ctx <- Some ctx
      | Value.VNull -> st.ctx <- None
      | v -> fail "in context: expected a context reference, got %a" Value.pp v)
  | None -> ());
  Fun.protect
    ~finally:(fun () -> st.ctx <- saved_ctx)
    (fun () ->
      let rows = ref [] in
      let probe = index_probe st s in
      let rec bind env ranges =
        match ranges with
        | [] ->
            let keep =
              match s.Ast.where with Some w -> Value.as_bool (eval st env w) | None -> true
            in
            if keep then begin
              let row =
                match s.Ast.projections with
                | None -> (
                    match s.Ast.ranges with
                    | [ (_, v) ] -> List.assoc v env
                    | rs -> Value.VList (List.map (fun (_, v) -> List.assoc v env) rs))
                | Some [ (e, _) ] -> eval st env e
                | Some ps -> Value.VList (List.map (fun (e, _) -> eval st env e) ps)
              in
              let sort_key = List.map (fun (e, asc) -> (eval st env e, asc)) s.Ast.order_by in
              rows := (row, sort_key) :: !rows
            end
        | (src, var) :: rest ->
            let candidates =
              match (probe, ranges == s.Ast.ranges) with
              | Some oids, true ->
                  (* index probe replaces the first extent scan *)
                  List.map (fun o -> Value.VRef o) (OidSet.elements oids)
              | _ -> elements (eval st env src)
            in
            List.iter (fun v -> bind ((var, v) :: env) rest) candidates
      in
      bind env s.Ast.ranges;
      let rows = List.rev !rows in
      let rows =
        if s.Ast.order_by = [] then rows
        else
          List.stable_sort
            (fun (_, ka) (_, kb) ->
              let rec cmp a b =
                match (a, b) with
                | [], [] -> 0
                | (va, asc) :: ra, (vb, _) :: rb ->
                    let c = Value.compare_value va vb in
                    if c <> 0 then if asc then c else -c else cmp ra rb
                | _ -> 0
              in
              cmp ka kb)
            rows
      in
      let values = List.map fst rows in
      let values =
        if s.Ast.distinct then
          List.rev
            (List.fold_left
               (fun acc v -> if List.exists (Value.equal_value v) acc then acc else v :: acc)
               [] values)
        else values
      in
      Value.VList values)
