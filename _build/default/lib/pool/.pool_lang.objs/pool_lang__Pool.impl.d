lib/pool/pool.ml: Ast Database Eval Parser Pmodel Value
