lib/pool/typecheck.ml: Ast Format List Meta Parser Pmodel Printf Value
