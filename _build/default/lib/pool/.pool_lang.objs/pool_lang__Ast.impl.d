lib/pool/ast.ml: Format Pmodel
