lib/pool/lexer.ml: Buffer Format List String
