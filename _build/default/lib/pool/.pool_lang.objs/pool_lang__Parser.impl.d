lib/pool/parser.ml: Array Ast Lexer List Pmodel
