lib/pool/eval.ml: Array Ast Database Float Format Fun Lazy List Meta Obj Pgraph Pmodel String Value
