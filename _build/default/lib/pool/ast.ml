(** Abstract syntax of POOL, the Prometheus Object-Oriented Language
    (thesis ch. 5.1): an OQL-derived select language extended with
    uniform treatment of relationships and objects, selective
    downcast, graph traversal operators, and classification-context
    scoping. *)

type expr =
  | Lit of Pmodel.Value.t
  | Var of string
  | Path of expr * string (* e.{attr} navigation; auto-dereferences *)
  | Call of string * expr list (* built-in functions, incl. method-style calls *)
  | Unop of string * expr (* "-", "not" *)
  | Binop of string * expr * expr (* = != < <= > >= + - * / mod and or in like union inter except *)
  | Downcast of string * expr (* (Class) e : selective downcast *)
  | Select of select

and select = {
  distinct : bool;
  projections : (expr * string option) list option; (* None = project all range variables *)
  ranges : (expr * string) list; (* source, variable; later ranges may depend on earlier *)
  where : expr option;
  order_by : (expr * bool) list; (* expr, ascending? *)
  context : expr option; (* IN CONTEXT e : default classification context *)
}

let rec pp ppf = function
  | Lit v -> Pmodel.Value.pp ppf v
  | Var x -> Format.pp_print_string ppf x
  | Path (e, a) -> Format.fprintf ppf "%a.%s" pp e a
  | Call (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp)
        args
  | Unop (op, e) -> Format.fprintf ppf "(%s %a)" op pp e
  | Binop (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a op pp b
  | Downcast (c, e) -> Format.fprintf ppf "((%s) %a)" c pp e
  | Select s -> pp_select ppf s

and pp_select ppf s =
  Format.fprintf ppf "(select%s " (if s.distinct then " distinct" else "");
  (match s.projections with
  | None -> Format.pp_print_string ppf "*"
  | Some ps ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
        (fun ppf (e, alias) ->
          pp ppf e;
          match alias with Some a -> Format.fprintf ppf " as %s" a | None -> ())
        ppf ps);
  Format.fprintf ppf " from %a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (src, v) -> Format.fprintf ppf "%a %s" pp src v))
    s.ranges;
  (match s.where with Some w -> Format.fprintf ppf " where %a" pp w | None -> ());
  (match s.order_by with
  | [] -> ()
  | obs ->
      Format.fprintf ppf " order by %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf (e, asc) -> Format.fprintf ppf "%a %s" pp e (if asc then "asc" else "desc")))
        obs);
  (match s.context with Some c -> Format.fprintf ppf " in context %a" pp c | None -> ());
  Format.pp_print_string ppf ")"

let to_string e = Format.asprintf "%a" pp e
