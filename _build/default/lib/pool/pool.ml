(** POOL front-end: parse and run queries against a database.

    {[
      let open Pool_lang in
      let rows = Pool.query db "select p.name from Person p where p.age > 30" in
      ...
    ]} *)

open Pmodel

type plan = { ast : Ast.expr; used_index : bool }

let parse = Parser.parse

(** Run a POOL query string; returns the result value (a [VList] of
    rows for select queries). *)
let query ?(env = []) (db : Database.t) (src : string) : Value.t =
  let ast = Parser.parse src in
  let st = Eval.make_state db in
  Eval.eval st env ast

(** Run a query and return the rows of a select as a list. *)
let rows ?env db src : Value.t list =
  match query ?env db src with
  | Value.VList l | Value.VSet l | Value.VBag l -> l
  | v -> [ v ]

(** Run a query expected to produce a single scalar (e.g.
    [count(select ...)]). *)
let scalar ?env db src : Value.t =
  match query ?env db src with Value.VList [ v ] -> v | v -> v

(** Run a query and report whether an index probe was used — exposed
    for the index-ablation benchmark. *)
let query_explain ?(env = []) db src : Value.t * [ `Index_probe | `Extent_scan ] =
  let ast = Parser.parse src in
  let st = Eval.make_state db in
  let v = Eval.eval st env ast in
  ((v : Value.t), if st.Eval.index_probes > 0 then `Index_probe else `Extent_scan)

(** Evaluate a boolean POOL expression — used by rule conditions. *)
let check ?(env = []) db src : bool =
  match query ~env db src with
  | Value.VBool b -> b
  | Value.VList l -> l <> []
  | v -> not (Value.is_null v)
