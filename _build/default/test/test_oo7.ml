(* Tests for the OO7 benchmark substrate: generation invariants,
   backend equivalence, and structural-modification round-trips. *)

open Pmodel
module O7 = Oo7bench.Oo7_schema
module Gen = Oo7bench.Oo7_gen
module RawDb = Oo7bench.Oo7_raw
module Ops = Oo7bench.Oo7_ops

let tmp_counter = ref 0

let tmp_path () =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "prom_oo7_%d_%d.db" (Unix.getpid ()) !tmp_counter)

let cleanup path =
  if Sys.file_exists path then Sys.remove path;
  if Sys.file_exists (path ^ ".journal") then Sys.remove (path ^ ".journal")

let with_pair f =
  let pp = tmp_path () and rp = tmp_path () in
  let pdb = Database.open_ pp in
  O7.install pdb;
  let ph = Gen.generate pdb O7.tiny in
  let rdb = RawDb.open_ rp in
  let rh = RawDb.generate rdb O7.tiny in
  Fun.protect
    ~finally:(fun () ->
      (try Database.close pdb with _ -> ());
      (try RawDb.close rdb with _ -> ());
      cleanup pp;
      cleanup rp)
    (fun () -> f { Ops.Prom.db = pdb; h = ph } { Ops.Raw.t = rdb; h = rh } pdb)

let p = O7.tiny

let test_generation_invariants () =
  with_pair (fun prom raw pdb ->
      let h = prom.Ops.Prom.h in
      Alcotest.(check int) "composites" p.O7.num_comp_per_module (Array.length h.O7.composites);
      Alcotest.(check int) "atomics" (p.O7.num_comp_per_module * p.O7.num_atomic_per_comp)
        (Array.length h.O7.atomics);
      Alcotest.(check int) "documents" p.O7.num_comp_per_module (Array.length h.O7.documents);
      (* every composite has exactly one root part and one document *)
      Array.iter
        (fun comp ->
          Alcotest.(check int) "one root" 1
            (List.length (Database.outgoing pdb ~rel_name:O7.root_part comp));
          Alcotest.(check int) "one doc" 1
            (List.length (Database.outgoing pdb ~rel_name:O7.has_doc comp));
          Alcotest.(check int) "parts per composite" p.O7.num_atomic_per_comp
            (List.length (Database.outgoing pdb ~rel_name:O7.has_part comp)))
        h.O7.composites;
      (* the raw backend has the same logical cardinalities *)
      let rh = raw.Ops.Raw.h in
      Alcotest.(check int) "raw composites" (Array.length h.O7.composites)
        (Array.length rh.O7.composites);
      Alcotest.(check int) "raw atomics" (Array.length h.O7.atomics) (Array.length rh.O7.atomics))

let test_traversals_agree () =
  with_pair (fun prom raw _ ->
      (* the ring connection guarantees each composite's graph is fully
         connected, so counts depend only on the structure parameters *)
      Alcotest.(check int) "T5 equal across backends" (Ops.Prom.t5 prom) (Ops.Raw.t5 raw);
      Alcotest.(check int) "T5 = composites * parts"
        (p.O7.num_comp_per_module * p.O7.num_atomic_per_comp)
        (Ops.Prom.t5 prom);
      (* T1/T6 depend on the random assembly wiring, which differs
         between the two independently-generated databases; they must
         still be non-trivial and bounded by the same structure *)
      let t1p = Ops.Prom.t1 prom and t1r = Ops.Raw.t1 raw in
      Alcotest.(check bool) "T1 non-trivial on both" true (t1p > 0 && t1r > 0);
      Alcotest.(check bool) "T1 bounded by structure" true
        (t1p mod p.O7.num_atomic_per_comp = 0 && t1r mod p.O7.num_atomic_per_comp = 0);
      Alcotest.(check int) "Q7 equal" (Ops.Prom.q7 prom) (Ops.Raw.q7 raw);
      Alcotest.(check int) "Q1 finds all" 10 (Ops.Prom.q1 prom ~n:10);
      Alcotest.(check int) "raw Q1 finds all" 10 (Ops.Raw.q1 raw ~n:10))

let test_t2_is_undoable () =
  with_pair (fun prom _ pdb ->
      (* each T2 run swaps every visited part the same number of times
         (shared composites are visited once per referencing assembly),
         so two runs restore every part exactly *)
      let originals =
        Array.map
          (fun a -> (Database.get_attr pdb a "x", Database.get_attr pdb a "y"))
          prom.Ops.Prom.h.O7.atomics
      in
      ignore (Ops.Prom.t2 prom);
      ignore (Ops.Prom.t2 prom);
      Array.iteri
        (fun i a ->
          let x0, y0 = originals.(i) in
          if not (Database.get_attr pdb a "x" = x0 && Database.get_attr pdb a "y" = y0) then
            Alcotest.failf "part %d not restored after double T2" i)
        prom.Ops.Prom.h.O7.atomics)

let test_s1_s2_roundtrip () =
  with_pair (fun prom raw pdb ->
      let before = Database.count pdb O7.atomic_part in
      let comps = Ops.Prom.s1 prom ~k:3 ~parts_per_comp:5 in
      Alcotest.(check int) "inserted parts" (before + 15) (Database.count pdb O7.atomic_part);
      Ops.Prom.s2 prom comps;
      (* lifetime dependency cascaded: parts and documents gone *)
      Alcotest.(check int) "parts cascaded" before (Database.count pdb O7.atomic_part);
      Alcotest.(check int) "composites restored" p.O7.num_comp_per_module
        (Database.count pdb O7.composite_part);
      (* raw backend round-trips too *)
      let rcomps = Ops.Raw.s1 raw ~k:3 ~parts_per_comp:5 in
      Ops.Raw.s2 raw rcomps;
      Alcotest.(check int) "raw T5 stable" (Ops.Prom.t5 prom) (Ops.Raw.t5 raw))

let test_cascade_on_module_delete () =
  with_pair (fun prom _ pdb ->
      (* deleting the module cascades down the whole private hierarchy:
         design root -> assemblies (lifetime dep) but composites are
         shared associations, so they survive *)
      Database.delete pdb prom.Ops.Prom.h.O7.module_oid;
      Alcotest.(check int) "assemblies cascaded" 0 (Database.count pdb O7.assembly);
      Alcotest.(check int) "composites survive (associations)" p.O7.num_comp_per_module
        (Database.count pdb O7.composite_part))

let () =
  Alcotest.run "oo7"
    [
      ( "oo7",
        [
          Alcotest.test_case "generation invariants" `Quick test_generation_invariants;
          Alcotest.test_case "traversals agree across backends" `Quick test_traversals_agree;
          Alcotest.test_case "T2 is an involution" `Quick test_t2_is_undoable;
          Alcotest.test_case "S1/S2 round-trip" `Quick test_s1_s2_roundtrip;
          Alcotest.test_case "module delete cascades" `Quick test_cascade_on_module_delete;
        ] );
    ]
