(* Tests for the POOL query language: lexer, parser, evaluator,
   relationship navigation, graph operators, contexts and the index
   optimisation. *)

open Pmodel
module V = Value
module P = Pool_lang.Pool

let tmp_counter = ref 0

let tmp_path () =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "prom_pool_%d_%d.db" (Unix.getpid ()) !tmp_counter)

let with_db f =
  let path = tmp_path () in
  let db = Database.open_ path in
  Fun.protect
    ~finally:(fun () ->
      (try Database.close db with _ -> ());
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".journal") then Sys.remove (path ^ ".journal"))
    (fun () -> f db)

let str s = V.VString s
let vint i = V.VInt i

(* Schema: a small firm. *)
let setup db =
  ignore
    (Database.define_class db "Person" [ Meta.attr "name" V.TString; Meta.attr "age" V.TInt ]);
  ignore (Database.define_class db "Company" [ Meta.attr "name" V.TString ]);
  ignore
    (Database.define_rel db "WorksFor" ~origin:"Person" ~destination:"Company"
       ~attrs:[ Meta.attr "salary" V.TInt ]);
  ignore
    (Database.define_rel db "Manages" ~origin:"Person" ~destination:"Person"
       ~kind:Meta.Aggregation);
  let mk_p name age = Database.create db "Person" [ ("name", str name); ("age", vint age) ] in
  let mk_c name = Database.create db "Company" [ ("name", str name) ] in
  let alice = mk_p "alice" 30 in
  let bob = mk_p "bob" 40 in
  let carol = mk_p "carol" 50 in
  let dave = mk_p "dave" 25 in
  let acme = mk_c "acme" in
  let globex = mk_c "globex" in
  ignore (Database.link db "WorksFor" ~origin:alice ~destination:acme ~attrs:[ ("salary", vint 50) ]);
  ignore (Database.link db "WorksFor" ~origin:bob ~destination:acme ~attrs:[ ("salary", vint 60) ]);
  ignore (Database.link db "WorksFor" ~origin:carol ~destination:globex ~attrs:[ ("salary", vint 70) ]);
  (* management chain: carol -> bob -> alice, bob -> dave *)
  ignore (Database.link db "Manages" ~origin:carol ~destination:bob);
  ignore (Database.link db "Manages" ~origin:bob ~destination:alice);
  ignore (Database.link db "Manages" ~origin:bob ~destination:dave);
  (alice, bob, carol, dave, acme, globex)

let strings_of rows = List.map V.as_string rows |> List.sort compare

(* --- parsing ---------------------------------------------------------- *)

let test_parse_roundtrip () =
  let ok q =
    match Pool_lang.Parser.parse q with
    | _ -> ()
    | exception Pool_lang.Lexer.Syntax_error (m, p) ->
        Alcotest.failf "parse %S failed at %d: %s" q p m
  in
  ok "select p from Person p";
  ok "select distinct p.name from Person p where p.age >= 18 order by p.name desc";
  ok "select p.name, c.name from Person p, Company c where c in p.targets('WorksFor')";
  ok "select t from Taxon t where count(t.targets('ChildOf')) > 0 in context ctx";
  ok "1 + 2 * 3";
  ok "not (1 = 2) and 'a' like '%a%'";
  ok "(Species) closure(x, 'ChildOf')";
  ok "select x from Node x where exists(select y from Node y where y = x)";
  ok "[1, 2, 3]";
  ok "-- comment\nselect p from Person p -- trailing"

let test_parse_errors () =
  let bad q =
    match Pool_lang.Parser.parse q with
    | exception Pool_lang.Lexer.Syntax_error _ -> ()
    | _ -> Alcotest.failf "expected syntax error for %S" q
  in
  bad "select";
  bad "select p from";
  bad "select p from Person p where";
  bad "1 +";
  bad "'unterminated";
  bad "select p from Person p extra garbage"

(* --- basic select ------------------------------------------------------ *)

let test_select_where () =
  with_db (fun db ->
      let _ = setup db in
      let rows = P.rows db "select p.name from Person p where p.age > 35" in
      Alcotest.(check (list string)) "over 35" [ "bob"; "carol" ] (strings_of rows))

let test_select_order_distinct () =
  with_db (fun db ->
      let _ = setup db in
      let rows = P.rows db "select p.name from Person p order by p.age desc" in
      Alcotest.(check (list string)) "by age desc" [ "carol"; "bob"; "alice"; "dave" ]
        (List.map V.as_string rows);
      let rows = P.rows db "select distinct c.name from Company c, Person p" in
      Alcotest.(check int) "distinct" 2 (List.length rows))

let test_select_multi_range_join () =
  with_db (fun db ->
      let _ = setup db in
      (* explicit join through relationship instances *)
      let rows =
        P.rows db
          "select p.name from Person p, p.out('WorksFor') w where w.destination.name = 'acme'"
      in
      Alcotest.(check (list string)) "acme employees" [ "alice"; "bob" ] (strings_of rows))

let test_arith_and_strings () =
  with_db (fun db ->
      let _ = setup db in
      Alcotest.(check int) "arith" 7 (V.as_int (P.query db "1 + 2 * 3"));
      Alcotest.(check bool) "like" true (V.as_bool (P.query db "'graveolens' like '%ole%'"));
      Alcotest.(check bool) "like anchors" false (V.as_bool (P.query db "'abc' like 'b%'"));
      Alcotest.(check bool) "endswith" true (V.as_bool (P.query db "endswith('Rosaceae', 'aceae')"));
      Alcotest.(check string) "concat" "ab" (V.as_string (P.query db "'a' + 'b'"));
      Alcotest.(check int) "strlen" 5 (V.as_int (P.query db "strlen('abcde')"));
      Alcotest.(check bool) "date compare" true
        (V.as_bool (P.query db "date(1753, 1, 1) < date(1821, 6, 1)")))

let test_aggregates () =
  with_db (fun db ->
      let _ = setup db in
      Alcotest.(check int) "count" 4 (V.as_int (P.query db "count(select p from Person p)"));
      Alcotest.(check int) "sum" 145
        (V.as_int (P.query db "sum(select p.age from Person p)"));
      Alcotest.(check int) "min" 25 (V.as_int (P.query db "min(select p.age from Person p)"));
      Alcotest.(check bool) "avg" true
        (abs_float (V.as_float (P.query db "avg(select p.age from Person p)") -. 36.25) < 1e-9);
      Alcotest.(check bool) "exists" true
        (V.as_bool (P.query db "exists(select p from Person p where p.age > 45)")))

let test_subquery_in () =
  with_db (fun db ->
      let _ = setup db in
      let rows =
        P.rows db
          "select p.name from Person p where p in (select w.origin from WorksFor w where w.salary \
           >= 60)"
      in
      Alcotest.(check (list string)) "well paid" [ "bob"; "carol" ] (strings_of rows))

(* --- relationships as first-class query objects ------------------------ *)

let test_relationship_extent () =
  with_db (fun db ->
      let _ = setup db in
      (* relationship classes have extents, uniform with objects *)
      let rows = P.rows db "select w from WorksFor w where w.salary > 55" in
      Alcotest.(check int) "rel extent filtered" 2 (List.length rows);
      let rows = P.rows db "select w.origin.name from WorksFor w order by w.salary desc" in
      Alcotest.(check (list string)) "nav through rel" [ "carol"; "bob"; "alice" ]
        (List.map V.as_string rows))

let test_navigation_builtins () =
  with_db (fun db ->
      let alice, bob, _, _, acme, _ = setup db in
      let env = [ ("alice", V.VRef alice); ("bob", V.VRef bob); ("acme", V.VRef acme) ] in
      let q s = P.query ~env db s in
      Alcotest.(check int) "targets" 1 (V.as_int (q "count(alice.targets('WorksFor'))"));
      Alcotest.(check int) "sources at acme" 2 (V.as_int (q "count(acme.sources('WorksFor'))"));
      Alcotest.(check bool) "has role" true (V.as_bool (q "has_role(acme, 'WorksFor')"));
      Alcotest.(check string) "class_of" "Company" (V.as_string (q "class_of(acme)")))

(* --- graph operators ---------------------------------------------------- *)

let test_graph_operators () =
  with_db (fun db ->
      let alice, _bob, carol, _dave, _, _ = setup db in
      let env = [ ("carol", V.VRef carol); ("alice", V.VRef alice) ] in
      let q s = P.query ~env db s in
      Alcotest.(check int) "closure" 4 (V.as_int (q "count(closure(carol, 'Manages'))"));
      Alcotest.(check int) "descendants" 3 (V.as_int (q "count(descendants(carol, 'Manages'))"));
      Alcotest.(check int) "bounded traverse" 1
        (V.as_int (q "count(traverse(carol, 'Manages', 1, 1))"));
      Alcotest.(check bool) "reachable" true (V.as_bool (q "reachable(carol, alice, 'Manages')"));
      Alcotest.(check bool) "not reachable" false
        (V.as_bool (q "reachable(alice, carol, 'Manages')"));
      Alcotest.(check int) "path length" 3 (V.as_int (q "count(path(carol, alice, 'Manages'))"));
      Alcotest.(check int) "ancestors" 2 (V.as_int (q "count(ancestors(alice, 'Manages'))"));
      (* graph extraction *)
      Alcotest.(check int) "graph nodes" 4 (V.as_int (q "count(nodes(graph(carol, 'Manages')))"));
      Alcotest.(check int) "graph edges" 3 (V.as_int (q "count(edges(graph(carol, 'Manages')))")))

let test_downcast () =
  with_db (fun db ->
      ignore (Database.define_class db "Animal" [ Meta.attr "name" V.TString ]);
      ignore (Database.define_class db "Dog" ~supers:[ "Animal" ] []);
      ignore (Database.define_class db "Cat" ~supers:[ "Animal" ] []);
      ignore (Database.create db "Dog" [ ("name", str "rex") ]);
      ignore (Database.create db "Cat" [ ("name", str "tom") ]);
      ignore (Database.create db "Animal" [ ("name", str "generic") ]);
      let rows = P.rows db "select a from Animal a" in
      Alcotest.(check int) "deep extent" 3 (List.length rows);
      (* selective downcast keeps only Dogs *)
      let v = P.query db "(Dog) (select a from Animal a)" in
      Alcotest.(check int) "downcast filters" 1 (List.length (V.as_elements v)))

(* --- contexts ------------------------------------------------------------ *)

let test_query_in_context () =
  with_db (fun db ->
      ignore (Database.define_class db "Taxon" [ Meta.attr "name" V.TString ]);
      ignore
        (Database.define_rel db "ChildOf" ~origin:"Taxon" ~destination:"Taxon"
           ~kind:Meta.Aggregation ~exclusive:true);
      let r = Database.create db "Taxon" [ ("name", str "root") ] in
      let a = Database.create db "Taxon" [ ("name", str "a") ] in
      let b = Database.create db "Taxon" [ ("name", str "b") ] in
      let c1 = Database.create_context db "c1" in
      let c2 = Database.create_context db "c2" in
      ignore (Database.link db "ChildOf" ~context:c1 ~origin:r ~destination:a);
      ignore (Database.link db "ChildOf" ~context:c2 ~origin:r ~destination:a);
      ignore (Database.link db "ChildOf" ~context:c2 ~origin:r ~destination:b);
      let env = [ ("root", V.VRef r); ("ctx1", V.VRef c1); ("ctx2", V.VRef c2) ] in
      (* same query, different classification context, different answer:
         querying by context (thesis 7.1.3.3) *)
      let n1 =
        V.as_int (P.query ~env db "count(select t from Taxon t where t in descendants(root, 'ChildOf') in context ctx1)")
      in
      let n2 =
        V.as_int (P.query ~env db "count(select t from Taxon t where t in descendants(root, 'ChildOf') in context ctx2)")
      in
      Alcotest.(check int) "context 1 sees one child" 1 n1;
      Alcotest.(check int) "context 2 sees two children" 2 n2;
      (* explicit null context escapes the scope *)
      let nall =
        V.as_int
          (P.query ~env db
             "count(descendants(root, 'ChildOf', null))")
      in
      Alcotest.(check int) "null context = unscoped" 2 nall)

(* --- index optimisation --------------------------------------------------- *)

let test_index_probe_used () =
  with_db (fun db ->
      let _ = setup db in
      let q = "select p from Person p where p.name = 'alice'" in
      let _, how = P.query_explain db q in
      Alcotest.(check bool) "no index yet" true (how = `Extent_scan);
      Database.create_index db "Person" "name";
      let v, how = P.query_explain db q in
      Alcotest.(check bool) "index used" true (how = `Index_probe);
      Alcotest.(check int) "same answer" 1 (List.length (V.as_elements v));
      (* result equivalence with and without index *)
      let v2 = P.query db "select p.name from Person p where p.name = 'alice'" in
      Alcotest.(check (list string)) "index result correct" [ "alice" ]
        (strings_of (V.as_elements v2)))

let test_synonym_query () =
  with_db (fun db ->
      let alice, bob, _, _, _, _ = setup db in
      Database.declare_synonym db alice bob;
      let env = [ ("alice", V.VRef alice); ("bob", V.VRef bob) ] in
      Alcotest.(check bool) "same_entity in POOL" true
        (V.as_bool (P.query ~env db "same_entity(alice, bob)"));
      Alcotest.(check int) "synonyms set" 2 (V.as_int (P.query ~env db "count(synonyms(alice))")))

(* qcheck: like_match agrees with a naive backtracking implementation *)
let naive_like s p =
  let n = String.length s and m = String.length p in
  let rec go i j =
    if j = m then i = n
    else
      match p.[j] with
      | '%' -> go i (j + 1) || (i < n && go (i + 1) j)
      | '_' -> i < n && go (i + 1) (j + 1)
      | c -> i < n && s.[i] = c && go (i + 1) (j + 1)
  in
  go 0 0

let test_like_equiv =
  QCheck.Test.make ~name:"LIKE matcher agrees with naive backtracking" ~count:500
    QCheck.(
      pair
        (string_gen_of_size Gen.(int_bound 12) Gen.(char_range 'a' 'c'))
        (string_gen_of_size Gen.(int_bound 8) (Gen.oneofl [ 'a'; 'b'; '%'; '_' ])))
    (fun (s, p) -> Pool_lang.Eval.like_match s p = naive_like s p)

(* --- edge cases -------------------------------------------------------- *)

let test_null_handling () =
  with_db (fun db ->
      let _ = setup db in
      (* navigation through null yields null / empty *)
      ignore (Database.define_class db "Lonely" [ Meta.attr "friend" (V.TRef "Person") ]);
      let l = Database.create db "Lonely" [] in
      let env = [ ("l", V.VRef l) ] in
      Alcotest.(check bool) "null nav" true (V.is_null (P.query ~env db "l.friend"));
      Alcotest.(check bool) "null nav chain" true (V.is_null (P.query ~env db "l.friend.name"));
      Alcotest.(check bool) "isnull" true (V.as_bool (P.query ~env db "isnull(l.friend)"));
      Alcotest.(check bool) "null = null" true (V.as_bool (P.query db "null = null"));
      Alcotest.(check int) "count over null" 0 (V.as_int (P.query ~env db "count(l.friend)")))

let test_nested_select () =
  with_db (fun db ->
      let _ = setup db in
      (* correlated subquery: people older than everyone at globex *)
      let rows =
        P.rows db
          "select p.name from Person p where not exists(select q from Person q, q.out('WorksFor') w where w.destination.name = 'globex' and q.age >= p.age)"
      in
      (* carol (50, globex) blocks bob(40)/alice(30)/dave(25); nobody qualifies...
         except nobody is older than carol herself is blocked too: empty *)
      Alcotest.(check (list string)) "correlated" [] (strings_of rows);
      let rows2 =
        P.rows db "select p.name from Person p where p.age > max(select q.age from Person q where q.name != p.name)"
      in
      Alcotest.(check (list string)) "older than all others" [ "carol" ] (strings_of rows2))

let test_multi_key_order () =
  with_db (fun db ->
      ignore (Database.define_class db "Row" [ Meta.attr "a" V.TInt; Meta.attr "b" V.TInt ]);
      List.iter
        (fun (a, b) -> ignore (Database.create db "Row" [ ("a", vint a); ("b", vint b) ]))
        [ (2, 1); (1, 2); (2, 0); (1, 1) ];
      let rows =
        P.rows db "select r.a, r.b from Row r order by r.a asc, r.b desc"
        |> List.map (fun v -> match v with V.VList [ V.VInt a; V.VInt b ] -> (a, b) | _ -> (-1, -1))
      in
      Alcotest.(check (list (pair int int))) "multi-key order"
        [ (1, 2); (1, 1); (2, 1); (2, 0) ] rows)

let test_eval_errors () =
  with_db (fun db ->
      let _ = setup db in
      let expect_eval_error q =
        match P.query db q with
        | exception Pool_lang.Eval.Eval_error _ -> ()
        | exception (Invalid_argument _) -> ()
        | v -> Alcotest.failf "expected error for %s, got %s" q (V.to_string v)
      in
      expect_eval_error "select x from NoSuchClass x";
      expect_eval_error "1 / 0";
      expect_eval_error "unknownfn(3)";
      expect_eval_error "1 + 'a'";
      expect_eval_error "'a'.name")

let test_like_edge_cases () =
  with_db (fun db ->
      let q s = V.as_bool (P.query db s) in
      Alcotest.(check bool) "empty pattern" true (q "'' like ''");
      Alcotest.(check bool) "pct alone" true (q "'anything' like '%'");
      Alcotest.(check bool) "underscore width" false (q "'ab' like '_'");
      Alcotest.(check bool) "underscore exact" true (q "'a' like '_'");
      Alcotest.(check bool) "quoted quote" true (q "'it''s' like 'it''s'"))

let test_rel_extent_in_context () =
  with_db (fun db ->
      ignore (Database.define_class db "T" []);
      ignore (Database.define_rel db "R" ~origin:"T" ~destination:"T");
      let a = Database.create db "T" [] in
      let b = Database.create db "T" [] in
      let c1 = Database.create_context db "one" in
      ignore (Database.link db "R" ~context:c1 ~origin:a ~destination:b);
      ignore (Database.link db "R" ~origin:a ~destination:b);
      (* relationship extent sees all instances; filter by .context *)
      Alcotest.(check int) "all instances" 2 (V.as_int (P.query db "count(select r from R r)"));
      let env = [ ("c", V.VRef c1) ] in
      Alcotest.(check int) "filtered by context attr" 1
        (V.as_int (P.query ~env db "count(select r from R r where r.context = c)"));
      Alcotest.(check int) "context-free instances" 1
        (V.as_int (P.query db "count(select r from R r where isnull(r.context))")))

let test_union_of_selects () =
  with_db (fun db ->
      let _ = setup db in
      let v =
        P.query db
          "(select p.name from Person p where p.age < 30) union (select p.name from Person p where p.age > 45)"
      in
      Alcotest.(check (list string)) "union of selects" [ "carol"; "dave" ]
        (strings_of (V.as_elements v)))

let test_downcast_on_rels () =
  with_db (fun db ->
      ignore (Database.define_class db "N" []);
      ignore (Database.define_rel db "Base" ~origin:"N" ~destination:"N");
      ignore (Database.define_rel db "Special" ~supers:[ "Base" ] ~origin:"N" ~destination:"N");
      let a = Database.create db "N" [] in
      let b = Database.create db "N" [] in
      ignore (Database.link db "Base" ~origin:a ~destination:b);
      ignore (Database.link db "Special" ~origin:a ~destination:b);
      (* rel-class extents are polymorphic; selective downcast narrows *)
      Alcotest.(check int) "polymorphic extent" 2 (V.as_int (P.query db "count(select r from Base r)"));
      Alcotest.(check int) "downcast to subclass" 1
        (V.as_int (P.query db "count((Special) (select r from Base r))")))

let () =
  Alcotest.run "pool"
    [
      ( "parser",
        [
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "select",
        [
          Alcotest.test_case "where" `Quick test_select_where;
          Alcotest.test_case "order/distinct" `Quick test_select_order_distinct;
          Alcotest.test_case "multi-range join" `Quick test_select_multi_range_join;
          Alcotest.test_case "arith & strings" `Quick test_arith_and_strings;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "subquery in" `Quick test_subquery_in;
        ] );
      ( "relationships",
        [
          Alcotest.test_case "rel extent" `Quick test_relationship_extent;
          Alcotest.test_case "navigation builtins" `Quick test_navigation_builtins;
        ] );
      ( "graph",
        [
          Alcotest.test_case "operators" `Quick test_graph_operators;
          Alcotest.test_case "selective downcast" `Quick test_downcast;
          Alcotest.test_case "query in context" `Quick test_query_in_context;
        ] );
      ( "optimisation",
        [
          Alcotest.test_case "index probe" `Quick test_index_probe_used;
          Alcotest.test_case "synonyms in POOL" `Quick test_synonym_query;
          QCheck_alcotest.to_alcotest test_like_equiv;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "null handling" `Quick test_null_handling;
          Alcotest.test_case "nested/correlated selects" `Quick test_nested_select;
          Alcotest.test_case "multi-key order by" `Quick test_multi_key_order;
          Alcotest.test_case "evaluation errors" `Quick test_eval_errors;
          Alcotest.test_case "LIKE edge cases" `Quick test_like_edge_cases;
          Alcotest.test_case "rel extent & context attr" `Quick test_rel_extent_in_context;
          Alcotest.test_case "union of selects" `Quick test_union_of_selects;
          Alcotest.test_case "downcast on relationship classes" `Quick test_downcast_on_rels;
        ] );
    ]
