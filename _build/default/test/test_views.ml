(* Tests for the views layer, the POOL static type checker, and the
   HTTP server front-end. *)

open Pmodel
module V = Value
module View = Pviews.View
module TC = Pool_lang.Typecheck

let tmp_counter = ref 0

let tmp_path () =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "prom_views_%d_%d.db" (Unix.getpid ()) !tmp_counter)

let cleanup path =
  if Sys.file_exists path then Sys.remove path;
  if Sys.file_exists (path ^ ".journal") then Sys.remove (path ^ ".journal")

let with_db f =
  let path = tmp_path () in
  let db = Database.open_ path in
  Fun.protect
    ~finally:(fun () ->
      (try Database.close db with _ -> ());
      cleanup path)
    (fun () -> f db)

let contains (s : string) (sub : string) : bool =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let setup db =
  ignore (Database.define_class db "Star" [ Meta.attr "name" V.TString; Meta.attr "mag" V.TFloat ]);
  ignore (Database.define_rel db "Orbits" ~origin:"Star" ~destination:"Star");
  let mk n m = Database.create db "Star" [ ("name", V.VString n); ("mag", V.VFloat m) ] in
  let sun = mk "sun" 4.8 in
  let sirius = mk "sirius" 1.4 in
  let vega = mk "vega" 0.6 in
  (sun, sirius, vega)

(* --- views --------------------------------------------------------------- *)

let test_view_define_query () =
  with_db (fun db ->
      let _ = setup db in
      let views = View.create db in
      ignore
        (View.define views ~name:"bright"
           ~query:"select s.name from Star s where s.mag < 2.0 order by s.name" ());
      let names = View.rows views "bright" |> List.map V.as_string in
      Alcotest.(check (list string)) "view result" [ "sirius"; "vega" ] names;
      Alcotest.(check int) "listed" 1 (List.length (View.list views));
      View.drop views "bright";
      Alcotest.(check int) "dropped" 0 (List.length (View.list views));
      match View.query views "bright" with
      | exception View.View_error _ -> ()
      | _ -> Alcotest.fail "expected error for dropped view")

let test_view_redefine () =
  with_db (fun db ->
      let _ = setup db in
      let views = View.create db in
      ignore (View.define views ~name:"v" ~query:"select s from Star s" ());
      ignore (View.define views ~name:"v" ~query:"count(select s from Star s)" ());
      Alcotest.(check int) "one view after redefine" 1 (List.length (View.list views));
      Alcotest.(check int) "new definition used" 3 (V.as_int (View.query views "v")))

let test_view_rejects_bad_query () =
  with_db (fun db ->
      let views = View.create db in
      match View.define views ~name:"bad" ~query:"select from where" () with
      | exception Pool_lang.Lexer.Syntax_error _ -> ()
      | _ -> Alcotest.fail "expected syntax error at definition time")

let test_view_materialised_cache () =
  with_db (fun db ->
      let sun, _, _ = setup db in
      let views = View.create db in
      ignore
        (View.define views ~name:"dim" ~query:"count(select s from Star s where s.mag > 2.0)"
           ~materialised:true ());
      Alcotest.(check int) "first eval" 1 (V.as_int (View.query views "dim"));
      Alcotest.(check bool) "cached" true (View.is_cached views "dim");
      (* an update invalidates the cache, and the view recomputes *)
      Database.update db sun "mag" (V.VFloat 1.0);
      Alcotest.(check bool) "invalidated" false (View.is_cached views "dim");
      Alcotest.(check int) "recomputed" 0 (V.as_int (View.query views "dim"));
      Alcotest.(check bool) "invalidation counted" true (View.invalidations views >= 1))

let test_view_persistence () =
  let path = tmp_path () in
  let db = Database.open_ path in
  let _ = setup db in
  let views = View.create db in
  ignore (View.define views ~name:"all_stars" ~query:"count(select s from Star s)" ());
  Database.close db;
  let db = Database.open_ path in
  let views = View.create db in
  Alcotest.(check int) "view survived reopen" 3 (V.as_int (View.query views "all_stars"));
  Database.close db;
  cleanup path

let test_view_through_facade () =
  let path = tmp_path () in
  let p = Prometheus.open_ path in
  ignore (Prometheus.define_class p "Dog" [ Prometheus.attr "name" Prometheus.TString ]);
  ignore (Prometheus.create p "Dog" [ ("name", Prometheus.vstr "rex") ]);
  ignore (Prometheus.define_view p ~name:"dogs" ~query:"select d.name from Dog d" ());
  Alcotest.(check int) "facade view" 1 (List.length (Prometheus.view_rows p "dogs"));
  Prometheus.close p;
  cleanup path

(* --- typecheck -------------------------------------------------------------- *)

let check_errs db q =
  List.map (fun (e : TC.error) -> e.TC.message) (TC.check_string (Database.schema db) q)

let test_typecheck_clean () =
  with_db (fun db ->
      let _ = setup db in
      List.iter
        (fun q -> Alcotest.(check (list string)) q [] (check_errs db q))
        [
          "select s.name from Star s where s.mag > 1.0";
          "select o from Orbits o where o.origin.name = 'sun'";
          "count(closure(first(select s from Star s), 'Orbits'))";
          "select s from Star s, s.targets('Orbits') t where t in (select x from Star x)";
        ])

let test_typecheck_detects () =
  with_db (fun db ->
      let _ = setup db in
      let has_err q frag =
        let msgs = check_errs db q in
        if not (List.exists (fun m -> contains m frag) msgs) then
          Alcotest.failf "for %S expected error containing %S, got [%s]" q frag
            (String.concat "; " msgs)
      in
      has_err "select s from Planet s" "unknown variable or class Planet";
      has_err "select s.radius from Star s" "no attribute radius";
      has_err "frobnicate(1)" "unknown function";
      has_err "count(1, 2)" "expects 1";
      has_err "closure(first(select s from Star s), 'NoSuchRel')" "unknown relationship class";
      has_err "(Galaxy) (select s from Star s)" "unknown class Galaxy in downcast")

let test_typecheck_accepts_roles () =
  with_db (fun db ->
      ignore (Database.define_class db "Spec" []);
      ignore (Database.define_class db "Nm" []);
      ignore
        (Database.define_rel db "TypeOf" ~origin:"Nm" ~destination:"Spec"
           ~attrs:[ Meta.attr "kind" V.TString ]
           ~inherited_attrs:[ "kind" ]);
      (* kind is not declared on Spec, but is acquirable as a role:
         the checker must not flag it *)
      Alcotest.(check (list string)) "role attr accepted" []
        (check_errs db "select s.kind from Spec s"))

let test_typecheck_rel_endpoints () =
  with_db (fun db ->
      let _ = setup db in
      Alcotest.(check (list string)) "origin/destination navigable" []
        (check_errs db "select o.origin, o.destination from Orbits o"))

(* --- http server --------------------------------------------------------------- *)

let str_find (s : string) (sub : string) : int option =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
  go 0

let http_get ~port path : string * string =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let out = Unix.out_channel_of_descr sock in
  let inp = Unix.in_channel_of_descr sock in
  output_string out (Printf.sprintf "GET %s HTTP/1.0\r\nHost: localhost\r\n\r\n" path);
  flush out;
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf inp 1
     done
   with End_of_file -> ());
  Unix.close sock;
  let response = Buffer.contents buf in
  let status =
    match String.index_opt response '\r' with
    | Some i -> String.sub response 0 i
    | None -> response
  in
  let body =
    match str_find response "\r\n\r\n" with
    | Some i -> String.sub response (i + 4) (String.length response - i - 4)
    | None -> ""
  in
  (status, body)

(* The server is exercised in a forked child process; the parent plays
   HTTP client.  The server handles a fixed number of requests and
   exits. *)
let test_http_server () =
  let path = tmp_path () in
  (* prepare data before forking *)
  let db = Database.open_ path in
  let _ = setup db in
  Database.close db;
  let port = 17000 + (Unix.getpid () mod 1000) in
  let n_requests = 6 in
  match Unix.fork () with
  | 0 ->
      (* child: serve then exit *)
      let code =
        try
          let db = Database.open_ path in
          Pserver.Http_server.serve db ~port ~max_requests:n_requests ();
          Database.close db;
          0
        with _ -> 1
      in
      Unix._exit code
  | child ->
      (* parent: wait for the socket to come up *)
      let rec wait_up tries =
        if tries = 0 then Alcotest.fail "server did not come up"
        else
          match http_get ~port "/" with
          | s -> s
          | exception Unix.Unix_error _ ->
              Unix.sleepf 0.05;
              wait_up (tries - 1)
      in
      let status, body = wait_up 100 in
      Alcotest.(check bool) "root 200" true (contains status "200");
      Alcotest.(check bool) "usage text" true (contains body "POOL");
      let status, body = http_get ~port "/query?q=count(select%20s%20from%20Star%20s)" in
      Alcotest.(check bool) "query 200" true (contains status "200");
      Alcotest.(check string) "query result" "3" (String.trim body);
      let status, body = http_get ~port "/query?q=select%20broken" in
      Alcotest.(check bool) "syntax error is 400" true (contains status "400");
      ignore body;
      let status, body = http_get ~port "/schema" in
      Alcotest.(check bool) "schema 200" true (contains status "200");
      Alcotest.(check bool) "schema lists Star" true (contains body "class Star");
      let status, _ = http_get ~port "/nope" in
      Alcotest.(check bool) "404" true (contains status "404");
      let status, body = http_get ~port "/stats" in
      Alcotest.(check bool) "stats 200" true (contains status "200");
      Alcotest.(check bool) "stats body" true (contains body "objects");
      let _, wstatus = Unix.waitpid [] child in
      Alcotest.(check bool) "server exited cleanly" true (wstatus = Unix.WEXITED 0);
      cleanup path

let () =
  Alcotest.run "views"
    [
      ( "views",
        [
          Alcotest.test_case "define/query/drop" `Quick test_view_define_query;
          Alcotest.test_case "redefine" `Quick test_view_redefine;
          Alcotest.test_case "rejects bad query" `Quick test_view_rejects_bad_query;
          Alcotest.test_case "materialised cache" `Quick test_view_materialised_cache;
          Alcotest.test_case "persistence" `Quick test_view_persistence;
          Alcotest.test_case "through facade" `Quick test_view_through_facade;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "clean queries" `Quick test_typecheck_clean;
          Alcotest.test_case "detects errors" `Quick test_typecheck_detects;
          Alcotest.test_case "accepts role attributes" `Quick test_typecheck_accepts_roles;
          Alcotest.test_case "relationship endpoints" `Quick test_typecheck_rel_endpoints;
        ] );
      ("http", [ Alcotest.test_case "server round-trip" `Quick test_http_server ]);
    ]
