(* Tests for the event layer, the object model and the graph layer. *)

open Pmodel
module V = Value
module E = Pevent.Event
module Bus = Pevent.Bus

let tmp_counter = ref 0

let tmp_path () =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "prom_model_%d_%d.db" (Unix.getpid ()) !tmp_counter)

let with_db f =
  let path = tmp_path () in
  let db = Database.open_ path in
  Fun.protect
    ~finally:(fun () ->
      (try Database.close db with _ -> ());
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".journal") then Sys.remove (path ^ ".journal"))
    (fun () -> f db)

let str s = V.VString s
let vint i = V.VInt i

(* Common schema for tests: people working for companies. *)
let people_schema db =
  ignore
    (Database.define_class db "Person"
       [ Meta.attr "name" V.TString; Meta.attr "age" V.TInt ]);
  ignore
    (Database.define_class db "Employee" ~supers:[ "Person" ] [ Meta.attr "salary" V.TFloat ]);
  ignore (Database.define_class db "Company" [ Meta.attr "name" V.TString ]);
  ignore
    (Database.define_rel db "WorksFor" ~origin:"Person" ~destination:"Company"
       ~attrs:[ Meta.attr "since" V.TInt; Meta.attr "role" V.TString ])

(* ------------------------------------------------------------------ *)
(* Event layer                                                         *)
(* ------------------------------------------------------------------ *)

let test_event_matching () =
  let is_subclass ~sub ~super = sub = "Employee" && super = "Person" in
  let m spec ev = E.matches is_subclass spec ev in
  let created = E.Obj_created { oid = 1; class_name = "Employee" } in
  Alcotest.(check bool) "wildcard create" true (m (E.On_create None) created);
  Alcotest.(check bool) "exact class" true (m (E.On_create (Some "Employee")) created);
  Alcotest.(check bool) "superclass matches" true (m (E.On_create (Some "Person")) created);
  Alcotest.(check bool) "other class" false (m (E.On_create (Some "Company")) created);
  let updated = E.Obj_updated { oid = 1; class_name = "Person"; attr = "age" } in
  Alcotest.(check bool) "update attr match" true (m (E.On_update (Some "Person", Some "age")) updated);
  Alcotest.(check bool) "update attr mismatch" false
    (m (E.On_update (Some "Person", Some "name")) updated);
  Alcotest.(check bool) "any_of" true
    (m (E.Any_of [ E.On_delete None; E.On_update (None, None) ]) updated)

let test_event_seq_tracker () =
  let tr = E.Tracker.create (E.Seq [ E.On_create (Some "A"); E.On_delete (Some "A") ]) in
  let nosub ~sub:_ ~super:_ = false in
  let create = E.Obj_created { oid = 1; class_name = "A" } in
  let delete = E.Obj_deleted { oid = 1; class_name = "A" } in
  Alcotest.(check bool) "delete first: no fire" false (E.Tracker.feed tr nosub delete);
  Alcotest.(check bool) "create: no fire yet" false (E.Tracker.feed tr nosub create);
  Alcotest.(check bool) "then delete: fires" true (E.Tracker.feed tr nosub delete);
  (* tracker reset after firing *)
  Alcotest.(check bool) "reset: delete alone no fire" false (E.Tracker.feed tr nosub delete)

let test_event_both_tracker () =
  let tr = E.Tracker.create (E.Both (E.On_create (Some "A"), E.On_create (Some "B"))) in
  let nosub ~sub:_ ~super:_ = false in
  let a = E.Obj_created { oid = 1; class_name = "A" } in
  let b = E.Obj_created { oid = 2; class_name = "B" } in
  Alcotest.(check bool) "b alone" false (E.Tracker.feed tr nosub b);
  Alcotest.(check bool) "then a fires" true (E.Tracker.feed tr nosub a)

let test_bus_subscribe_unsubscribe () =
  let bus = Bus.create () in
  let fired = ref 0 in
  let id = Bus.subscribe bus (E.On_create None) (fun _ -> incr fired) in
  Bus.emit bus (E.Obj_created { oid = 1; class_name = "X" });
  Alcotest.(check int) "fired once" 1 !fired;
  Bus.unsubscribe bus id;
  Bus.emit bus (E.Obj_created { oid = 2; class_name = "X" });
  Alcotest.(check int) "not fired after unsubscribe" 1 !fired

let test_bus_tx_resets_composites () =
  let bus = Bus.create () in
  let fired = ref 0 in
  ignore
    (Bus.subscribe bus
       (E.Seq [ E.On_create (Some "A"); E.On_delete (Some "A") ])
       (fun _ -> incr fired));
  Bus.emit bus (E.Obj_created { oid = 1; class_name = "A" });
  Bus.emit bus E.Tx_abort;
  (* sequence progress must have been reset *)
  Bus.emit bus (E.Obj_deleted { oid = 1; class_name = "A" });
  Alcotest.(check int) "no fire across tx boundary" 0 !fired

(* ------------------------------------------------------------------ *)
(* Schema / meta                                                       *)
(* ------------------------------------------------------------------ *)

let test_schema_inheritance () =
  with_db (fun db ->
      people_schema db;
      let schema = Database.schema db in
      Alcotest.(check bool) "employee < person" true
        (Meta.is_subclass schema ~sub:"Employee" ~super:"Person");
      Alcotest.(check bool) "person not < employee" false
        (Meta.is_subclass schema ~sub:"Person" ~super:"Employee");
      Alcotest.(check bool) "everything < Object" true
        (Meta.is_subclass schema ~sub:"Company" ~super:"Object");
      let attrs = List.map (fun a -> a.Meta.attr_name) (Meta.all_attrs schema "Employee") in
      Alcotest.(check bool) "inherits name" true (List.mem "name" attrs);
      Alcotest.(check bool) "own salary" true (List.mem "salary" attrs))

let test_schema_validation () =
  with_db (fun db ->
      people_schema db;
      Alcotest.check_raises "duplicate class"
        (Meta.Schema_error "class Person already defined") (fun () ->
          ignore (Database.define_class db "Person" []));
      (match Database.define_rel db "Bad" ~origin:"Nowhere" ~destination:"Person" with
      | exception Meta.Schema_error _ -> ()
      | _ -> Alcotest.fail "expected schema error for unknown origin");
      (* association cannot be lifetime dependent (Table 3) *)
      match
        Database.define_rel db "BadAssoc" ~origin:"Person" ~destination:"Company"
          ~kind:Meta.Association ~lifetime_dep:true
      with
      | exception Meta.Schema_error _ -> ()
      | _ -> Alcotest.fail "expected error: association + lifetime dependency")

let test_schema_persistence () =
  let path = tmp_path () in
  let db = Database.open_ path in
  people_schema db;
  let p = Database.create db "Employee" [ ("name", str "Ada"); ("salary", V.VFloat 100.) ] in
  Database.close db;
  let db = Database.open_ path in
  let schema = Database.schema db in
  Alcotest.(check bool) "class survived" true (Meta.is_class schema "Employee");
  Alcotest.(check bool) "rel survived" true (Meta.is_rel schema "WorksFor");
  Alcotest.(check bool) "rel semantics survived" true
    ((Meta.rel_exn schema "WorksFor").Meta.kind = Meta.Association);
  let o = Database.get_exn db p in
  Alcotest.(check string) "object survived" "Ada" (V.as_string (Obj.get o "name"));
  Database.close db;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Objects                                                             *)
(* ------------------------------------------------------------------ *)

let test_object_crud () =
  with_db (fun db ->
      people_schema db;
      let p = Database.create db "Person" [ ("name", str "Bob"); ("age", vint 42) ] in
      Alcotest.(check string) "name" "Bob" (V.as_string (Database.get_attr db p "name"));
      Database.update db p "age" (vint 43);
      Alcotest.(check int) "updated age" 43 (V.as_int (Database.get_attr db p "age"));
      Database.delete db p;
      Alcotest.(check bool) "gone" true (Database.get db p = None))

let test_object_type_errors () =
  with_db (fun db ->
      people_schema db;
      (match Database.create db "Person" [ ("age", str "not a number") ] with
      | exception Database.Model_error _ -> ()
      | _ -> Alcotest.fail "expected type error");
      (match Database.create db "Person" [ ("unknown_attr", vint 1) ] with
      | exception Database.Model_error _ -> ()
      | _ -> Alcotest.fail "expected unknown attribute error");
      match Database.create db "Object" [] with
      | exception Database.Model_error _ -> ()
      | _ -> Alcotest.fail "expected abstract class error")

let test_extents () =
  with_db (fun db ->
      people_schema db;
      let _p1 = Database.create db "Person" [ ("name", str "a") ] in
      let _p2 = Database.create db "Person" [ ("name", str "b") ] in
      let _e = Database.create db "Employee" [ ("name", str "c") ] in
      Alcotest.(check int) "shallow extent" 2 (Database.count db ~deep:false "Person");
      Alcotest.(check int) "deep extent" 3 (Database.count db "Person");
      Alcotest.(check int) "employee extent" 1 (Database.count db "Employee"))

let test_int_widens_to_float () =
  with_db (fun db ->
      people_schema db;
      let e = Database.create db "Employee" [ ("salary", vint 50) ] in
      Alcotest.(check int) "stored as int ok" 50 (V.as_int (Database.get_attr db e "salary")))

(* ------------------------------------------------------------------ *)
(* Relationships                                                       *)
(* ------------------------------------------------------------------ *)

let test_link_basics () =
  with_db (fun db ->
      people_schema db;
      let p = Database.create db "Person" [ ("name", str "Bob") ] in
      let c = Database.create db "Company" [ ("name", str "Acme") ] in
      let r = Database.link db "WorksFor" ~origin:p ~destination:c ~attrs:[ ("since", vint 1999) ] in
      let ro = Database.get_exn db r in
      Alcotest.(check int) "origin" p (Obj.origin ro);
      Alcotest.(check int) "destination" c (Obj.destination ro);
      Alcotest.(check int) "rel attr" 1999 (V.as_int (Obj.get ro "since"));
      Alcotest.(check int) "outgoing" 1 (List.length (Database.outgoing db ~rel_name:"WorksFor" p));
      Alcotest.(check int) "incoming" 1 (List.length (Database.incoming db ~rel_name:"WorksFor" c));
      Database.unlink db r;
      Alcotest.(check int) "unlinked" 0 (List.length (Database.outgoing db ~rel_name:"WorksFor" p)))

let test_link_type_checks () =
  with_db (fun db ->
      people_schema db;
      let p = Database.create db "Person" [] in
      let c = Database.create db "Company" [] in
      match Database.link db "WorksFor" ~origin:c ~destination:p with
      | exception Database.Model_error _ -> ()
      | _ -> Alcotest.fail "expected endpoint type error")

let test_delete_removes_links () =
  with_db (fun db ->
      people_schema db;
      let p = Database.create db "Person" [] in
      let c = Database.create db "Company" [] in
      ignore (Database.link db "WorksFor" ~origin:p ~destination:c);
      Database.delete db c;
      Alcotest.(check int) "dangling link removed" 0
        (List.length (Database.outgoing db ~rel_name:"WorksFor" p));
      Alcotest.(check bool) "person survives" true (Database.get db p <> None))

let test_lifetime_dependency_cascade () =
  with_db (fun db ->
      ignore (Database.define_class db "Doc" [ Meta.attr "title" V.TString ]);
      ignore (Database.define_class db "Chapter" [ Meta.attr "n" V.TInt ]);
      ignore
        (Database.define_rel db "HasChapter" ~origin:"Doc" ~destination:"Chapter"
           ~kind:Meta.Aggregation ~lifetime_dep:true ~sharable:false);
      let d = Database.create db "Doc" [] in
      let ch1 = Database.create db "Chapter" [ ("n", vint 1) ] in
      let ch2 = Database.create db "Chapter" [ ("n", vint 2) ] in
      ignore (Database.link db "HasChapter" ~origin:d ~destination:ch1);
      ignore (Database.link db "HasChapter" ~origin:d ~destination:ch2);
      Database.delete db d;
      Alcotest.(check bool) "chapter 1 cascaded" true (Database.get db ch1 = None);
      Alcotest.(check bool) "chapter 2 cascaded" true (Database.get db ch2 = None))

let test_shared_dependent_survives () =
  with_db (fun db ->
      ignore (Database.define_class db "Doc" []);
      ignore (Database.define_class db "Figure" []);
      ignore
        (Database.define_rel db "HasFigure" ~origin:"Doc" ~destination:"Figure"
           ~kind:Meta.Aggregation ~lifetime_dep:true ~sharable:true);
      let d1 = Database.create db "Doc" [] in
      let d2 = Database.create db "Doc" [] in
      let f = Database.create db "Figure" [] in
      ignore (Database.link db "HasFigure" ~origin:d1 ~destination:f);
      ignore (Database.link db "HasFigure" ~origin:d2 ~destination:f);
      Database.delete db d1;
      Alcotest.(check bool) "shared figure survives" true (Database.get db f <> None);
      Database.delete db d2;
      Alcotest.(check bool) "last owner gone: figure cascades" true (Database.get db f = None))

let test_non_sharable () =
  with_db (fun db ->
      ignore (Database.define_class db "Engine" []);
      ignore (Database.define_class db "Car" []);
      ignore
        (Database.define_rel db "HasEngine" ~origin:"Car" ~destination:"Engine"
           ~kind:Meta.Aggregation ~sharable:false);
      let e = Database.create db "Engine" [] in
      let c1 = Database.create db "Car" [] in
      let c2 = Database.create db "Car" [] in
      ignore (Database.link db "HasEngine" ~origin:c1 ~destination:e);
      match Database.link db "HasEngine" ~origin:c2 ~destination:e with
      | exception Database.Model_error _ -> ()
      | _ -> Alcotest.fail "expected sharability violation")

let test_exclusive_per_context () =
  with_db (fun db ->
      ignore (Database.define_class db "Taxon" [ Meta.attr "name" V.TString ]);
      ignore
        (Database.define_rel db "ChildOf" ~origin:"Taxon" ~destination:"Taxon"
           ~kind:Meta.Aggregation ~exclusive:true);
      let parent1 = Database.create db "Taxon" [ ("name", str "P1") ] in
      let parent2 = Database.create db "Taxon" [ ("name", str "P2") ] in
      let child = Database.create db "Taxon" [ ("name", str "C") ] in
      let ctx1 = Database.create_context db "classification-1" in
      let ctx2 = Database.create_context db "classification-2" in
      ignore (Database.link db "ChildOf" ~context:ctx1 ~origin:parent1 ~destination:child);
      (* same context: second parent violates exclusivity *)
      (match Database.link db "ChildOf" ~context:ctx1 ~origin:parent2 ~destination:child with
      | exception Database.Model_error _ -> ()
      | _ -> Alcotest.fail "expected exclusivity violation in same context");
      (* a different context may classify the same child differently:
         multiple overlapping classifications *)
      ignore (Database.link db "ChildOf" ~context:ctx2 ~origin:parent2 ~destination:child);
      Alcotest.(check int) "two classifications overlap on child" 2
        (List.length (Database.incoming db ~rel_name:"ChildOf" child)))

let test_cardinality_max () =
  with_db (fun db ->
      ignore (Database.define_class db "Wheel" []);
      ignore (Database.define_class db "Bike" []);
      ignore
        (Database.define_rel db "HasWheel" ~origin:"Bike" ~destination:"Wheel"
           ~card_out:(Meta.card ~cmax:2 ()));
      let b = Database.create db "Bike" [] in
      let w () = Database.create db "Wheel" [] in
      ignore (Database.link db "HasWheel" ~origin:b ~destination:(w ()));
      ignore (Database.link db "HasWheel" ~origin:b ~destination:(w ()));
      match Database.link db "HasWheel" ~origin:b ~destination:(w ()) with
      | exception Database.Model_error _ -> ()
      | _ -> Alcotest.fail "expected max cardinality violation")

let test_min_cardinality_validation () =
  with_db (fun db ->
      ignore (Database.define_class db "Order" []);
      ignore (Database.define_class db "Item" []);
      ignore
        (Database.define_rel db "HasItem" ~origin:"Order" ~destination:"Item"
           ~card_out:(Meta.card ~cmin:1 ()));
      Database.begin_tx db;
      let o = Database.create db "Order" [] in
      let errs = Database.validate_min_cards db in
      Alcotest.(check bool) "empty order invalid" true (errs <> []);
      let i = Database.create db "Item" [] in
      ignore (Database.link db "HasItem" ~origin:o ~destination:i);
      Alcotest.(check (list string)) "satisfied" [] (Database.validate_min_cards db);
      Database.commit db)

let test_constant_relationship () =
  with_db (fun db ->
      ignore (Database.define_class db "A" []);
      ignore (Database.define_class db "B" []);
      ignore (Database.define_rel db "Fixed" ~origin:"A" ~destination:"B" ~constant:true);
      let a = Database.create db "A" [] in
      let b1 = Database.create db "B" [] in
      let b2 = Database.create db "B" [] in
      let r = Database.link db "Fixed" ~origin:a ~destination:b1 in
      match Database.retarget db r ~destination:b2 () with
      | exception Database.Model_error _ -> ()
      | _ -> Alcotest.fail "expected constancy violation")

let test_retarget () =
  with_db (fun db ->
      people_schema db;
      let p = Database.create db "Person" [] in
      let c1 = Database.create db "Company" [] in
      let c2 = Database.create db "Company" [] in
      let r = Database.link db "WorksFor" ~origin:p ~destination:c1 in
      Database.retarget db r ~destination:c2 ();
      Alcotest.(check int) "moved" 1 (List.length (Database.incoming db ~rel_name:"WorksFor" c2));
      Alcotest.(check int) "left old" 0 (List.length (Database.incoming db ~rel_name:"WorksFor" c1)))

let test_role_attribute_inheritance () =
  with_db (fun db ->
      ignore (Database.define_class db "Specimen" [ Meta.attr "code" V.TString ]);
      ignore (Database.define_class db "NameRec" [ Meta.attr "name" V.TString ]);
      ignore
        (Database.define_rel db "TypeOf" ~origin:"NameRec" ~destination:"Specimen"
           ~attrs:[ Meta.attr "kind" V.TString ]
           ~inherited_attrs:[ "kind" ]);
      let s = Database.create db "Specimen" [ ("code", str "HB107") ] in
      let n = Database.create db "NameRec" [ ("name", str "Apium") ] in
      Alcotest.(check bool) "no role yet" false (Database.has_role db s ~rel_name:"TypeOf");
      Alcotest.(check bool) "kind null before" true
        (V.is_null (Database.get_attr db s "kind"));
      ignore
        (Database.link db "TypeOf" ~origin:n ~destination:s ~attrs:[ ("kind", str "holotype") ]);
      Alcotest.(check bool) "role acquired" true (Database.has_role db s ~rel_name:"TypeOf");
      Alcotest.(check string) "inherited attribute" "holotype"
        (V.as_string (Database.get_attr db s "kind")))

let test_instance_synonyms () =
  with_db (fun db ->
      people_schema db;
      let a = Database.create db "Person" [ ("name", str "Carl Linnaeus") ] in
      let b = Database.create db "Person" [ ("name", str "Carl von Linné") ] in
      let c = Database.create db "Person" [ ("name", str "L.") ] in
      let d = Database.create db "Person" [ ("name", str "Darwin") ] in
      Database.declare_synonym db a b;
      Database.declare_synonym db b c;
      Alcotest.(check bool) "transitive" true (Database.same_entity db a c);
      Alcotest.(check bool) "distinct" false (Database.same_entity db a d);
      Alcotest.(check int) "synonym set" 3 (Database.OidSet.cardinal (Database.synonym_set db a)))

let test_tx_abort_rebuilds_mirror () =
  with_db (fun db ->
      people_schema db;
      let p = Database.create db "Person" [ ("name", str "stable") ] in
      Database.begin_tx db;
      let q = Database.create db "Person" [ ("name", str "temp") ] in
      Database.update db p "name" (str "mutated");
      let c = Database.create db "Company" [] in
      ignore (Database.link db "WorksFor" ~origin:p ~destination:c);
      Database.abort db;
      Alcotest.(check bool) "temp object gone" true (Database.get db q = None);
      Alcotest.(check string) "update rolled back" "stable"
        (V.as_string (Database.get_attr db p "name"));
      Alcotest.(check int) "link rolled back" 0
        (List.length (Database.outgoing db ~rel_name:"WorksFor" p));
      Alcotest.(check int) "extent restored" 1 (Database.count db "Person"))

let test_events_emitted () =
  with_db (fun db ->
      people_schema db;
      let log = ref [] in
      ignore
        (Bus.subscribe (Database.bus db) (E.On_create (Some "Person")) (fun ev ->
             log := ("create", ev) :: !log));
      ignore
        (Bus.subscribe (Database.bus db) (E.On_rel_create (Some "WorksFor")) (fun ev ->
             log := ("link", ev) :: !log));
      let p = Database.create db "Person" [] in
      let c = Database.create db "Company" [] in
      ignore (Database.link db "WorksFor" ~origin:p ~destination:c);
      Alcotest.(check int) "two events" 2 (List.length !log))

let test_index_maintenance () =
  with_db (fun db ->
      people_schema db;
      let mk n = Database.create db "Person" [ ("name", str n) ] in
      let a = mk "alice" in
      let _b = mk "bob" in
      Database.create_index db "Person" "name";
      (match Database.index_lookup db "Person" "name" (str "alice") with
      | Some s -> Alcotest.(check int) "found via index" 1 (Database.OidSet.cardinal s)
      | None -> Alcotest.fail "index missing");
      Database.update db a "name" (str "alicia");
      (match Database.index_lookup db "Person" "name" (str "alice") with
      | Some s -> Alcotest.(check int) "old key empty" 0 (Database.OidSet.cardinal s)
      | None -> Alcotest.fail "index missing");
      (match Database.index_lookup db "Person" "name" (str "alicia") with
      | Some s -> Alcotest.(check int) "new key" 1 (Database.OidSet.cardinal s)
      | None -> Alcotest.fail "index missing");
      (* index covers subclasses *)
      let _e = Database.create db "Employee" [ ("name", str "eve") ] in
      match Database.index_lookup db "Person" "name" (str "eve") with
      | Some s -> Alcotest.(check int) "subclass indexed" 1 (Database.OidSet.cardinal s)
      | None -> Alcotest.fail "index missing")

(* ------------------------------------------------------------------ *)
(* Graph layer                                                         *)
(* ------------------------------------------------------------------ *)

let tree_schema db =
  ignore (Database.define_class db "Node" [ Meta.attr "label" V.TString ]);
  ignore
    (Database.define_rel db "Edge" ~origin:"Node" ~destination:"Node" ~kind:Meta.Aggregation)

let mk_node db l = Database.create db "Node" [ ("label", str l) ]

let test_traverse_descendants () =
  with_db (fun db ->
      tree_schema db;
      (*      r
             / \
            a   b
           / \
          c   d     *)
      let r = mk_node db "r" in
      let a = mk_node db "a" in
      let b = mk_node db "b" in
      let c = mk_node db "c" in
      let d = mk_node db "d" in
      let link o dst = ignore (Database.link db "Edge" ~origin:o ~destination:dst) in
      link r a;
      link r b;
      link a c;
      link a d;
      let desc = Pgraph.Traverse.descendants db ~rel:"Edge" r in
      Alcotest.(check int) "4 descendants" 4 (Database.OidSet.cardinal desc);
      let depth1 = Pgraph.Traverse.descendants db ~rel:"Edge" ~max_depth:1 r in
      Alcotest.(check int) "depth 1" 2 (Database.OidSet.cardinal depth1);
      let depth2only = Pgraph.Traverse.descendants db ~rel:"Edge" ~min_depth:2 r in
      Alcotest.(check int) "depth 2 only" 2 (Database.OidSet.cardinal depth2only);
      let anc = Pgraph.Traverse.ancestors db ~rel:"Edge" c in
      Alcotest.(check int) "ancestors of c" 2 (Database.OidSet.cardinal anc);
      Alcotest.(check bool) "reachable" true (Pgraph.Traverse.reachable db ~rel:"Edge" r d);
      Alcotest.(check bool) "not reachable up" false (Pgraph.Traverse.reachable db ~rel:"Edge" d r);
      (match Pgraph.Traverse.shortest_path db ~rel:"Edge" r c with
      | Some p -> Alcotest.(check (list int)) "path" [ r; a; c ] p
      | None -> Alcotest.fail "no path");
      Alcotest.(check bool) "acyclic" false
        (Pgraph.Traverse.has_cycle db ~rel:"Edge" (Pgraph.Traverse.closure db ~rel:"Edge" r)))

let test_traverse_cycle_safe () =
  with_db (fun db ->
      tree_schema db;
      let a = mk_node db "a" in
      let b = mk_node db "b" in
      ignore (Database.link db "Edge" ~origin:a ~destination:b);
      ignore (Database.link db "Edge" ~origin:b ~destination:a);
      (* proper descendants of a: just b — the root is visited at depth 0
         and not re-counted when the cycle returns to it *)
      let desc = Pgraph.Traverse.descendants db ~rel:"Edge" a in
      Alcotest.(check int) "cycle terminates" 1 (Database.OidSet.cardinal desc);
      let clo = Pgraph.Traverse.closure db ~rel:"Edge" a in
      Alcotest.(check int) "closure includes root" 2 (Database.OidSet.cardinal clo);
      Alcotest.(check bool) "cycle detected" true
        (Pgraph.Traverse.has_cycle db ~rel:"Edge" (Pgraph.Traverse.closure db ~rel:"Edge" a)))

let test_context_scoped_traversal () =
  with_db (fun db ->
      tree_schema db;
      let r = mk_node db "r" in
      let x = mk_node db "x" in
      let y = mk_node db "y" in
      let ctx1 = Database.create_context db "c1" in
      let ctx2 = Database.create_context db "c2" in
      ignore (Database.link db "Edge" ~context:ctx1 ~origin:r ~destination:x);
      ignore (Database.link db "Edge" ~context:ctx2 ~origin:r ~destination:y);
      let d1 = Pgraph.Traverse.descendants db ~context:ctx1 ~rel:"Edge" r in
      let d2 = Pgraph.Traverse.descendants db ~context:ctx2 ~rel:"Edge" r in
      let dall = Pgraph.Traverse.descendants db ~rel:"Edge" r in
      Alcotest.(check int) "ctx1 sees x" 1 (Database.OidSet.cardinal d1);
      Alcotest.(check bool) "ctx1 content" true (Database.OidSet.mem x d1);
      Alcotest.(check int) "ctx2 sees y" 1 (Database.OidSet.cardinal d2);
      Alcotest.(check int) "unscoped sees both" 2 (Database.OidSet.cardinal dall))

let test_subgraph_extract_copy () =
  with_db (fun db ->
      tree_schema db;
      let r = mk_node db "r" in
      let a = mk_node db "a" in
      let b = mk_node db "b" in
      let ctx1 = Database.create_context db "v1" in
      ignore (Database.link db "Edge" ~context:ctx1 ~origin:r ~destination:a);
      ignore (Database.link db "Edge" ~context:ctx1 ~origin:a ~destination:b);
      let g = Pgraph.Subgraph.extract db ~context:ctx1 ~rel:"Edge" r in
      Alcotest.(check int) "nodes" 3 (Pgraph.Subgraph.node_count g);
      Alcotest.(check int) "edges" 2 (Pgraph.Subgraph.edge_count g);
      (* copy into a fresh context: the revision workflow *)
      let ctx2 = Database.create_context db "v2" in
      let new_edges = Pgraph.Subgraph.copy_into db g ~into:ctx2 in
      Alcotest.(check int) "copied edges" 2 (List.length new_edges);
      let g2 = Pgraph.Subgraph.of_context db ~rel:"Edge" ctx2 in
      Alcotest.(check bool) "same structure" true (Pgraph.Subgraph.same_structure db g g2);
      Alcotest.(check int) "overlap is total on nodes" 100
        (int_of_float (Pgraph.Subgraph.overlap g g2 *. 100.)))

(* --- additional coverage -------------------------------------------------- *)

let test_custom_events () =
  with_db (fun db ->
      let log = ref [] in
      ignore
        (Bus.subscribe (Database.bus db) (E.On_custom "import") (fun ev ->
             match ev with
             | E.Custom { payload; _ } -> log := payload :: !log
             | _ -> ()));
      Bus.emit (Database.bus db) (E.Custom { tag = "import"; payload = [ ("file", "x.csv") ] });
      Bus.emit (Database.bus db) (E.Custom { tag = "other"; payload = [] });
      Alcotest.(check int) "only matching tag" 1 (List.length !log))

let test_multi_level_inheritance_override () =
  with_db (fun db ->
      ignore (Database.define_class db "A" [ Meta.attr "x" V.TInt ~default:(V.VInt 1) ]);
      ignore (Database.define_class db "B" ~supers:[ "A" ] []);
      (* C overrides the default of x *)
      ignore
        (Database.define_class db "C" ~supers:[ "B" ]
           [ Meta.attr "x" V.TInt ~default:(V.VInt 3) ]);
      let c = Database.create db "C" [] in
      Alcotest.(check int) "overridden default" 3 (V.as_int (Database.get_attr db c "x"));
      let b = Database.create db "B" [] in
      Alcotest.(check int) "inherited default" 1 (V.as_int (Database.get_attr db b "x"));
      (* deep extent of A counts all three *)
      ignore (Database.create db "A" []);
      Alcotest.(check int) "deep extent" 3 (Database.count db "A"))

let test_collection_attr_conformance () =
  with_db (fun db ->
      people_schema db;
      ignore
        (Database.define_class db "Group"
           [ Meta.attr "members" (V.TSet (V.TRef "Person")) ]);
      let p1 = Database.create db "Person" [] in
      let p2 = Database.create db "Employee" [] (* subclass conforms *) in
      let g =
        Database.create db "Group" [ ("members", V.vset [ V.VRef p1; V.VRef p2 ]) ]
      in
      Alcotest.(check int) "set stored" 2
        (List.length (V.as_elements (Database.get_attr db g "members")));
      let c = Database.create db "Company" [] in
      match Database.update db g "members" (V.vset [ V.VRef c ]) with
      | exception Database.Model_error _ -> ()
      | _ -> Alcotest.fail "Company is not a Person: should fail")

let test_extent_after_delete_and_reopen () =
  let path = tmp_path () in
  let db = Database.open_ path in
  people_schema db;
  let p1 = Database.create db "Person" [ ("name", str "a") ] in
  let _p2 = Database.create db "Person" [ ("name", str "b") ] in
  Database.delete db p1;
  Alcotest.(check int) "extent after delete" 1 (Database.count db "Person");
  Database.close db;
  let db = Database.open_ path in
  Alcotest.(check int) "extent after reopen" 1 (Database.count db "Person");
  Database.close db;
  Sys.remove path

let test_retarget_respects_semantics () =
  with_db (fun db ->
      ignore (Database.define_class db "P" []);
      ignore (Database.define_class db "Q" []);
      ignore
        (Database.define_rel db "Uniq" ~origin:"P" ~destination:"Q" ~kind:Meta.Aggregation
           ~sharable:false);
      let p1 = Database.create db "P" [] in
      let p2 = Database.create db "P" [] in
      let q1 = Database.create db "Q" [] in
      let q2 = Database.create db "Q" [] in
      let _r1 = Database.link db "Uniq" ~origin:p1 ~destination:q1 in
      let r2 = Database.link db "Uniq" ~origin:p2 ~destination:q2 in
      (* retargeting r2 onto q1 violates non-sharability; the failed
         retarget must leave r2 exactly as before *)
      (match Database.retarget db r2 ~destination:q1 () with
      | exception Database.Model_error _ -> ()
      | _ -> Alcotest.fail "expected sharability violation on retarget");
      let r2o = Database.get_exn db r2 in
      Alcotest.(check int) "r2 origin intact" p2 (Obj.origin r2o);
      Alcotest.(check int) "r2 destination intact" q2 (Obj.destination r2o);
      Alcotest.(check int) "adjacency intact" 1
        (List.length (Database.incoming db ~rel_name:"Uniq" q2)))

let test_self_link_and_unlink_counts () =
  with_db (fun db ->
      ignore (Database.define_class db "N" []);
      ignore (Database.define_rel db "E" ~origin:"N" ~destination:"N");
      let n = Database.create db "N" [] in
      let r = Database.link db "E" ~origin:n ~destination:n in
      Alcotest.(check int) "self-loop outgoing" 1
        (List.length (Database.outgoing db ~rel_name:"E" n));
      Alcotest.(check int) "self-loop incoming" 1
        (List.length (Database.incoming db ~rel_name:"E" n));
      Database.unlink db r;
      Alcotest.(check int) "gone" 0 (List.length (Database.rels_of db n)))

let test_date_values () =
  with_db (fun db ->
      ignore (Database.define_class db "Ev" [ Meta.attr "when" V.TDate ]);
      let e1 = Database.create db "Ev" [ ("when", V.VDate (V.date ~month:6 ~day:15 1821)) ] in
      let d = Database.get_attr db e1 "when" in
      (match d with
      | V.VDate dd ->
          Alcotest.(check int) "year" 1821 dd.V.year;
          Alcotest.(check int) "month" 6 dd.V.month
      | _ -> Alcotest.fail "not a date");
      Alcotest.(check bool) "date ordering" true
        (V.compare_value d (V.VDate (V.date 1900)) < 0))

let test_rel_with_rel_superclass_extent () =
  with_db (fun db ->
      ignore (Database.define_class db "N" []);
      ignore (Database.define_rel db "Base" ~origin:"N" ~destination:"N");
      ignore (Database.define_rel db "Special" ~supers:[ "Base" ] ~origin:"N" ~destination:"N");
      let a = Database.create db "N" [] in
      let b = Database.create db "N" [] in
      ignore (Database.link db "Base" ~origin:a ~destination:b);
      ignore (Database.link db "Special" ~origin:a ~destination:b);
      (* navigation through the super-relationship sees both *)
      Alcotest.(check int) "polymorphic outgoing" 2
        (List.length (Database.outgoing db ~rel_name:"Base" a));
      Alcotest.(check int) "exact subclass" 1
        (List.length (Database.outgoing db ~rel_name:"Special" a));
      Alcotest.(check int) "rel extent deep" 2
        (Database.OidSet.cardinal (Database.extent db "Base")))

let () =
  Alcotest.run "model"
    [
      ( "events",
        [
          Alcotest.test_case "matching" `Quick test_event_matching;
          Alcotest.test_case "seq tracker" `Quick test_event_seq_tracker;
          Alcotest.test_case "both tracker" `Quick test_event_both_tracker;
          Alcotest.test_case "bus subscribe/unsubscribe" `Quick test_bus_subscribe_unsubscribe;
          Alcotest.test_case "tx resets composites" `Quick test_bus_tx_resets_composites;
        ] );
      ( "schema",
        [
          Alcotest.test_case "inheritance" `Quick test_schema_inheritance;
          Alcotest.test_case "validation" `Quick test_schema_validation;
          Alcotest.test_case "persistence" `Quick test_schema_persistence;
        ] );
      ( "objects",
        [
          Alcotest.test_case "crud" `Quick test_object_crud;
          Alcotest.test_case "type errors" `Quick test_object_type_errors;
          Alcotest.test_case "extents" `Quick test_extents;
          Alcotest.test_case "int widens to float" `Quick test_int_widens_to_float;
        ] );
      ( "relationships",
        [
          Alcotest.test_case "link basics" `Quick test_link_basics;
          Alcotest.test_case "endpoint type checks" `Quick test_link_type_checks;
          Alcotest.test_case "delete removes links" `Quick test_delete_removes_links;
          Alcotest.test_case "lifetime cascade" `Quick test_lifetime_dependency_cascade;
          Alcotest.test_case "shared dependent survives" `Quick test_shared_dependent_survives;
          Alcotest.test_case "non-sharable" `Quick test_non_sharable;
          Alcotest.test_case "exclusive per context" `Quick test_exclusive_per_context;
          Alcotest.test_case "max cardinality" `Quick test_cardinality_max;
          Alcotest.test_case "min cardinality validation" `Quick test_min_cardinality_validation;
          Alcotest.test_case "constant relationship" `Quick test_constant_relationship;
          Alcotest.test_case "retarget" `Quick test_retarget;
          Alcotest.test_case "role attribute inheritance" `Quick test_role_attribute_inheritance;
          Alcotest.test_case "instance synonyms" `Quick test_instance_synonyms;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "abort rebuilds mirror" `Quick test_tx_abort_rebuilds_mirror;
          Alcotest.test_case "events emitted" `Quick test_events_emitted;
          Alcotest.test_case "index maintenance" `Quick test_index_maintenance;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "custom events" `Quick test_custom_events;
          Alcotest.test_case "multi-level inheritance override" `Quick
            test_multi_level_inheritance_override;
          Alcotest.test_case "collection attr conformance" `Quick test_collection_attr_conformance;
          Alcotest.test_case "extent after delete & reopen" `Quick
            test_extent_after_delete_and_reopen;
          Alcotest.test_case "retarget respects semantics" `Quick test_retarget_respects_semantics;
          Alcotest.test_case "self-link" `Quick test_self_link_and_unlink_counts;
          Alcotest.test_case "date values" `Quick test_date_values;
          Alcotest.test_case "relationship subclass extents" `Quick
            test_rel_with_rel_superclass_extent;
        ] );
      ( "graph",
        [
          Alcotest.test_case "descendants/ancestors/paths" `Quick test_traverse_descendants;
          Alcotest.test_case "cycle safety" `Quick test_traverse_cycle_safe;
          Alcotest.test_case "context-scoped traversal" `Quick test_context_scoped_traversal;
          Alcotest.test_case "subgraph extract & copy" `Quick test_subgraph_extract_copy;
        ] );
    ]
