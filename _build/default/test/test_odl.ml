(* Tests for the ODL schema definition language. *)

open Pmodel
module V = Value

let tmp_counter = ref 0

let tmp_path () =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "prom_odl_%d_%d.db" (Unix.getpid ()) !tmp_counter)

let with_db f =
  let path = tmp_path () in
  let db = Database.open_ path in
  Fun.protect
    ~finally:(fun () ->
      (try Database.close db with _ -> ());
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".journal") then Sys.remove (path ^ ".journal"))
    (fun () -> f db)

let schema_src =
  {|
  -- a small firm, in ODL
  abstract class LegalEntity {}

  class Person {
    attribute string name;
    attribute int age = 18;
    required attribute string surname;
    attribute set<ref<Person>> friends;
  }

  class Company extends LegalEntity {
    attribute string name;
  }

  relationship WorksFor (Person -> Company) {
    association;
    attribute int salary = 0;
    card out 0..1;
    card in 0..100;
  }

  relationship Owns (Company -> Company) {
    aggregation;
    exclusive;
    not sharable;
    lifetime dependent;
    attribute string reason;
    inherited attribute string reason;
  }
|}

let test_odl_load () =
  with_db (fun db ->
      Podl.Odl.load db schema_src;
      let schema = Database.schema db in
      (* classes *)
      Alcotest.(check bool) "Person defined" true (Meta.is_class schema "Person");
      Alcotest.(check bool) "LegalEntity abstract" true
        (Meta.class_exn schema "LegalEntity").Meta.abstract;
      Alcotest.(check bool) "Company extends LegalEntity" true
        (Meta.is_subclass schema ~sub:"Company" ~super:"LegalEntity");
      (* attribute details *)
      let age = Option.get (Meta.find_attr schema "Person" "age") in
      Alcotest.(check bool) "default" true (age.Meta.default = V.VInt 18);
      let surname = Option.get (Meta.find_attr schema "Person" "surname") in
      Alcotest.(check bool) "required" true surname.Meta.required;
      let friends = Option.get (Meta.find_attr schema "Person" "friends") in
      Alcotest.(check bool) "set<ref>" true (friends.Meta.attr_ty = V.TSet (V.TRef "Person"));
      (* relationship semantics *)
      let wf = Meta.rel_exn schema "WorksFor" in
      Alcotest.(check bool) "association" true (wf.Meta.kind = Meta.Association);
      Alcotest.(check bool) "card out" true (wf.Meta.card_out = Meta.card ~cmax:1 ());
      Alcotest.(check bool) "card in" true (wf.Meta.card_in = Meta.card ~cmax:100 ());
      let owns = Meta.rel_exn schema "Owns" in
      Alcotest.(check bool) "aggregation" true (owns.Meta.kind = Meta.Aggregation);
      Alcotest.(check bool) "exclusive" true owns.Meta.exclusive;
      Alcotest.(check bool) "not sharable" false owns.Meta.sharable;
      Alcotest.(check bool) "lifetime" true owns.Meta.lifetime_dep;
      Alcotest.(check (list string)) "inherited" [ "reason" ] owns.Meta.inherited_attrs)

let test_odl_schema_is_usable () =
  with_db (fun db ->
      Podl.Odl.load db schema_src;
      let p =
        Database.create db "Person" [ ("name", V.VString "Ada"); ("surname", V.VString "L") ]
      in
      Alcotest.(check int) "default applied" 18 (V.as_int (Database.get_attr db p "age"));
      (* required enforcement *)
      (match Database.create db "Person" [ ("name", V.VString "x") ] with
      | exception Database.Model_error _ -> ()
      | _ -> Alcotest.fail "missing required attribute should fail");
      let c = Database.create db "Company" [ ("name", V.VString "acme") ] in
      ignore (Database.link db "WorksFor" ~origin:p ~destination:c);
      (* card out 0..1 enforced *)
      let c2 = Database.create db "Company" [ ("name", V.VString "other") ] in
      match Database.link db "WorksFor" ~origin:p ~destination:c2 with
      | exception Database.Model_error _ -> ()
      | _ -> Alcotest.fail "second job should violate card out 0..1")

let test_odl_errors () =
  with_db (fun db ->
      let bad src =
        match Podl.Odl.load db src with
        | exception Podl.Odl.Odl_error _ -> ()
        | exception Meta.Schema_error _ -> ()
        | _ -> Alcotest.failf "expected ODL error for %s" src
      in
      bad "class {}";
      bad "class X { attribute mystery y; }";
      bad "relationship R (A -> B) { association; }" (* unknown classes *);
      bad "banana";
      bad "class Y { attribute int n }" (* missing ';' *))

let test_odl_string_literals_with_punctuation () =
  with_db (fun db ->
      (* ';', '{', '}' inside string defaults (and comments) must survive *)
      Podl.Odl.load db
        "-- comment with ; and { braces }\nclass Conf { attribute string sep = \"a;{b}\"; }";
      let d = Option.get (Meta.find_attr (Database.schema db) "Conf" "sep") in
      Alcotest.(check bool) "default preserved" true (d.Meta.default = V.VString "a;{b}"))

let test_odl_persists () =
  let path = tmp_path () in
  let db = Database.open_ path in
  Podl.Odl.load db "class Zed { attribute int z; }";
  Database.close db;
  let db = Database.open_ path in
  Alcotest.(check bool) "ODL schema persisted" true (Meta.is_class (Database.schema db) "Zed");
  Database.close db;
  Sys.remove path

let test_odl_print_roundtrip () =
  with_db (fun db ->
      Podl.Odl.load db schema_src;
      let printed = Podl.Odl.print (Database.schema db) in
      (* load the printed text into a fresh database: same schema *)
      let path2 = tmp_path () in
      let db2 = Database.open_ path2 in
      Podl.Odl.load db2 printed;
      let s1 = Database.schema db and s2 = Database.schema db2 in
      List.iter
        (fun (c : Meta.class_def) ->
          if c.Meta.class_name <> "Object" && c.Meta.class_name.[0] <> '_'
             && c.Meta.class_name <> "Context" then
            match Meta.find_class s2 c.Meta.class_name with
            | Some c2 ->
                if c2 <> c then
                  Alcotest.failf "class %s differs after roundtrip" c.Meta.class_name
            | None -> Alcotest.failf "class %s lost in roundtrip" c.Meta.class_name)
        (Meta.classes s1);
      List.iter
        (fun (r : Meta.rel_def) ->
          match Meta.find_rel s2 r.Meta.rel_name with
          | Some r2 ->
              if r2 <> r then Alcotest.failf "rel %s differs after roundtrip" r.Meta.rel_name
          | None -> Alcotest.failf "rel %s lost in roundtrip" r.Meta.rel_name)
        (Meta.rels s1);
      Database.close db2;
      Sys.remove path2)

let test_odl_print_taxonomy_schema () =
  with_db (fun db ->
      (* the full taxonomic schema survives an ODL print/parse cycle *)
      Taxonomy.Tax_schema.install db;
      let printed = Podl.Odl.print (Database.schema db) in
      let path2 = tmp_path () in
      let db2 = Database.open_ path2 in
      Podl.Odl.load db2 printed;
      Alcotest.(check bool) "Taxon survives" true (Meta.is_class (Database.schema db2) "Taxon");
      let c = Meta.rel_exn (Database.schema db2) "Circumscribes" in
      Alcotest.(check bool) "semantics survive" true
        (c.Meta.exclusive && c.Meta.kind = Meta.Aggregation);
      Database.close db2;
      Sys.remove path2)

let () =
  Alcotest.run "odl"
    [
      ( "odl",
        [
          Alcotest.test_case "load full schema" `Quick test_odl_load;
          Alcotest.test_case "schema is usable" `Quick test_odl_schema_is_usable;
          Alcotest.test_case "errors" `Quick test_odl_errors;
          Alcotest.test_case "string literals with punctuation" `Quick
            test_odl_string_literals_with_punctuation;
          Alcotest.test_case "persists" `Quick test_odl_persists;
          Alcotest.test_case "print/parse roundtrip" `Quick test_odl_print_roundtrip;
          Alcotest.test_case "taxonomy schema roundtrip" `Quick test_odl_print_taxonomy_schema;
        ] );
    ]
