(* Tests for the rules engine, PCL, and the Prometheus core facade. *)

open Pmodel
module V = Value
module R = Prules.Rule
module E = Prules.Engine

let tmp_counter = ref 0

let tmp_path () =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "prom_rules_%d_%d.db" (Unix.getpid ()) !tmp_counter)

let with_p f =
  let path = tmp_path () in
  let p = Prometheus.open_ path in
  Fun.protect
    ~finally:(fun () ->
      (try Prometheus.close p with _ -> ());
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".journal") then Sys.remove (path ^ ".journal"))
    (fun () -> f p)

let str s = V.VString s
let vint i = V.VInt i

let part_schema p =
  ignore
    (Prometheus.define_class p "Part"
       [ Prometheus.attr "name" V.TString; Prometheus.attr "price" V.TInt ])

(* --- immediate rules ---------------------------------------------------- *)

let test_invariant_abort () =
  with_p (fun p ->
      part_schema p;
      Prometheus.add_rule p
        (R.invariant "price_range" ~class_name:"Part" (fun db o ->
             ignore db;
             match Obj.get o "price" with V.VInt x -> x >= 10 && x <= 10000 | _ -> true));
      (* valid create passes *)
      let ok = Prometheus.create p "Part" [ ("price", vint 50) ] in
      Alcotest.(check bool) "valid part" true (Prometheus.get p ok <> None);
      (* invalid create raises inside with_tx and rolls back *)
      (match
         Prometheus.with_tx p (fun () -> Prometheus.create p "Part" [ ("price", vint 5) ])
       with
      | exception Prometheus.Violation _ -> ()
      | _ -> Alcotest.fail "expected violation");
      Alcotest.(check int) "rolled back" 1 (Prometheus.count p "Part");
      (* invalid update also vetoed *)
      match Prometheus.with_tx p (fun () -> Prometheus.update p ok "price" (vint 99999)) with
      | exception Prometheus.Violation _ ->
          Alcotest.(check int) "update rolled back" 50
            (V.as_int (Prometheus.get_attr p ok "price"))
      | _ -> Alcotest.fail "expected violation on update")

let test_warn_action () =
  with_p (fun p ->
      part_schema p;
      Prometheus.add_rule p
        (R.invariant "pricey" ~class_name:"Part" ~on_violation:R.Warn (fun _ o ->
             match Obj.get o "price" with V.VInt x -> x < 100 | _ -> true));
      ignore (Prometheus.create p "Part" [ ("price", vint 500) ]);
      Alcotest.(check int) "warning recorded" 1 (List.length (Prometheus.rule_warnings p));
      Alcotest.(check int) "object still created" 1 (Prometheus.count p "Part"))

let test_repair_action () =
  with_p (fun p ->
      part_schema p;
      (* repair: clamp negative prices to 10 *)
      Prometheus.add_rule p
        (R.invariant "non_negative" ~class_name:"Part"
           ~on_violation:
             (R.Repair
                (fun db ev ->
                  match ev with
                  | Pevent.Event.Obj_created { oid; _ } | Pevent.Event.Obj_updated { oid; _ } ->
                      Database.update db oid "price" (vint 10)
                  | _ -> ()))
           (fun _ o -> match Obj.get o "price" with V.VInt x -> x >= 0 | _ -> true));
      let o = Prometheus.create p "Part" [ ("price", vint (-5)) ] in
      Alcotest.(check int) "repaired" 10 (V.as_int (Prometheus.get_attr p o "price")))

let test_interactive_action () =
  with_p (fun p ->
      part_schema p;
      let asked = ref 0 in
      let answer = ref true in
      Prometheus.add_rule p
        (R.invariant "confirm_expensive" ~class_name:"Part"
           ~on_violation:(R.Interactive (fun _msg -> incr asked; !answer))
           (fun _ o -> match Obj.get o "price" with V.VInt x -> x < 1000 | _ -> true));
      ignore (Prometheus.create p "Part" [ ("price", vint 5000) ]);
      Alcotest.(check int) "asked once, accepted" 1 !asked;
      answer := false;
      (match
         Prometheus.with_tx p (fun () -> Prometheus.create p "Part" [ ("price", vint 9000) ])
       with
      | exception Prometheus.Violation _ -> ()
      | _ -> Alcotest.fail "expected violation when user refuses");
      Alcotest.(check int) "second part refused" 1 (Prometheus.count p "Part"))

(* --- deferred rules ------------------------------------------------------- *)

let test_deferred_rule_at_commit () =
  with_p (fun p ->
      part_schema p;
      ignore (Prometheus.define_class p "Assembly" []);
      ignore
        (Prometheus.define_rel p "Contains" ~origin:"Assembly" ~destination:"Part"
           ~kind:Prometheus.Aggregation);
      (* deferred: an assembly must contain at least one part at commit *)
      Prometheus.add_rule p
        (R.postcondition "assembly_non_empty"
           (Pevent.Event.On_create (Some "Assembly"))
           (fun db ev ->
             match ev with
             | Pevent.Event.Obj_created { oid; _ } -> (
                 match Database.get db oid with
                 | None -> true
                 | Some _ -> Database.outgoing db ~rel_name:"Contains" oid <> [])
             | _ -> true));
      (* creating assembly + part in one tx passes: condition evaluated at
         commit, against the final state *)
      Prometheus.with_tx p (fun () ->
          let a = Prometheus.create p "Assembly" [] in
          let part = Prometheus.create p "Part" [ ("price", vint 10) ] in
          ignore (Prometheus.link p "Contains" ~origin:a ~destination:part));
      Alcotest.(check int) "committed" 1 (Prometheus.count p "Assembly");
      (* empty assembly vetoed at commit *)
      match Prometheus.with_tx p (fun () -> Prometheus.create p "Assembly" []) with
      | exception Prometheus.Violation _ ->
          Alcotest.(check int) "vetoed at commit" 1 (Prometheus.count p "Assembly")
      | _ -> Alcotest.fail "expected deferred violation")

let test_min_cardinality_at_commit () =
  with_p (fun p ->
      ignore (Prometheus.define_class p "Order" []);
      ignore (Prometheus.define_class p "Line" []);
      ignore
        (Prometheus.define_rel p "HasLine" ~origin:"Order" ~destination:"Line"
           ~card_out:(Prometheus.card ~cmin:1 ()));
      (match Prometheus.with_tx p (fun () -> Prometheus.create p "Order" []) with
      | exception R.Violation _ -> ()
      | _ -> Alcotest.fail "expected min-cardinality violation");
      Prometheus.with_tx p (fun () ->
          let o = Prometheus.create p "Order" [] in
          let l = Prometheus.create p "Line" [] in
          ignore (Prometheus.link p "HasLine" ~origin:o ~destination:l));
      Alcotest.(check int) "valid order committed" 1 (Prometheus.count p "Order"))

let test_rule_priority_order () =
  with_p (fun p ->
      part_schema p;
      let trace = ref [] in
      let mk name prio =
        R.make ~timing:R.Deferred ~priority:prio name
          (Pevent.Event.On_create (Some "Part"))
          (fun _ _ ->
            trace := name :: !trace;
            true)
      in
      Prometheus.add_rules p [ mk "low_prio" 200; mk "high_prio" 1 ];
      Prometheus.with_tx p (fun () -> ignore (Prometheus.create p "Part" []));
      Alcotest.(check (list string)) "priority order" [ "high_prio"; "low_prio" ]
        (List.rev !trace))

let test_remove_rule () =
  with_p (fun p ->
      part_schema p;
      Prometheus.add_rule p
        (R.invariant "no_parts" ~class_name:"Part" (fun _ _ -> false));
      (match Prometheus.with_tx p (fun () -> Prometheus.create p "Part" []) with
      | exception Prometheus.Violation _ -> ()
      | _ -> Alcotest.fail "rule should fire");
      Prometheus.remove_rule p "no_parts";
      ignore (Prometheus.create p "Part" []);
      Alcotest.(check int) "rule removed" 1 (Prometheus.count p "Part"))

let test_applicability_condition () =
  with_p (fun p ->
      part_schema p;
      (* rule applies only to parts named "widget" *)
      let r =
        R.invariant "widget_price" ~class_name:"Part" (fun _ o ->
            match Obj.get o "price" with V.VInt x -> x >= 100 | _ -> true)
      in
      let r =
        {
          r with
          R.applicability =
            Some
              (fun db ev ->
                match ev with
                | Pevent.Event.Obj_created { oid; _ } | Pevent.Event.Obj_updated { oid; _ } -> (
                    match Database.get db oid with
                    | Some o -> Obj.get o "name" = str "widget"
                    | None -> false)
                | _ -> false);
        }
      in
      Prometheus.add_rule p r;
      (* non-widget: rule not applicable, cheap price fine *)
      ignore (Prometheus.create p "Part" [ ("name", str "gadget"); ("price", vint 5) ]);
      (* widget: rule applies *)
      match
        Prometheus.with_tx p (fun () ->
            Prometheus.create p "Part" [ ("name", str "widget"); ("price", vint 5) ])
      with
      | exception Prometheus.Violation _ -> ()
      | _ -> Alcotest.fail "expected violation for cheap widget")

(* --- engine edge cases --------------------------------------------------- *)

let test_repair_cascade_limit () =
  with_p (fun p ->
      part_schema p;
      (* a pathological repair that re-violates forever must hit the
         cascade limit instead of looping *)
      Prometheus.add_rule p
        (R.invariant "sisyphus" ~class_name:"Part"
           ~on_violation:
             (R.Repair
                (fun db ev ->
                  match ev with
                  | Pevent.Event.Obj_created { oid; _ } | Pevent.Event.Obj_updated { oid; _ } ->
                      (* "repair" to another violating value: retriggers *)
                      Database.update db oid "price" (vint (-1))
                  | _ -> ()))
           (fun _ o -> match Obj.get o "price" with V.VInt x -> x >= 0 | _ -> true));
      match
        Prometheus.with_tx p (fun () -> Prometheus.create p "Part" [ ("price", vint (-5)) ])
      with
      | exception Prometheus.Violation _ -> () (* limit reached, surfaced as violation *)
      | _ -> Alcotest.fail "expected cascade limit violation")

let test_composite_event_rule () =
  with_p (fun p ->
      part_schema p;
      ignore (Prometheus.define_class p "Audit" []);
      (* fires only when a Part is created AND THEN deleted within one tx *)
      let fired = ref 0 in
      Prometheus.add_rule p
        (R.make "churn_detector"
           (Pevent.Event.Seq
              [ Pevent.Event.On_create (Some "Part"); Pevent.Event.On_delete (Some "Part") ])
           (fun _ _ ->
             incr fired;
             true));
      Prometheus.with_tx p (fun () ->
          let x = Prometheus.create p "Part" [] in
          Prometheus.delete p x);
      Alcotest.(check int) "fired on create-then-delete" 1 !fired;
      (* split across transactions: must not fire *)
      Prometheus.with_tx p (fun () -> ignore (Prometheus.create p "Part" []));
      Prometheus.with_tx p (fun () ->
          match Prometheus.extent_list p "Part" with
          | x :: _ -> Prometheus.delete p x
          | [] -> ());
      Alcotest.(check int) "no fire across txs" 1 !fired)

let test_deferred_rule_sees_final_state () =
  with_p (fun p ->
      part_schema p;
      (* deferred rule on creation; the object is updated to a legal
         value later in the same tx: no violation at commit *)
      Prometheus.add_rule p
        (R.make ~timing:R.Deferred "eventually_priced"
           (Pevent.Event.On_create (Some "Part"))
           (fun db ev ->
             match ev with
             | Pevent.Event.Obj_created { oid; _ } -> (
                 match Database.get db oid with
                 | None -> true (* deleted again before commit: fine *)
                 | Some o -> ( match Obj.get o "price" with V.VInt x -> x > 0 | _ -> false))
             | _ -> true));
      Prometheus.with_tx p (fun () ->
          let x = Prometheus.create p "Part" [ ("price", vint 0) ] in
          Prometheus.update p x "price" (vint 10));
      Alcotest.(check int) "committed" 1 (Prometheus.count p "Part");
      (* created-then-deleted object does not trip the rule either *)
      Prometheus.with_tx p (fun () ->
          let x = Prometheus.create p "Part" [ ("price", vint 0) ] in
          Prometheus.delete p x);
      Alcotest.(check int) "still one" 1 (Prometheus.count p "Part"))

let test_engine_disable_enable () =
  with_p (fun p ->
      part_schema p;
      Prometheus.add_rule p (R.invariant "no_parts" ~class_name:"Part" (fun _ _ -> false));
      Prules.Engine.set_enabled (Prometheus.engine p) false;
      ignore (Prometheus.create p "Part" []);
      Alcotest.(check int) "rule bypassed while disabled" 1 (Prometheus.count p "Part");
      Prules.Engine.set_enabled (Prometheus.engine p) true;
      match Prometheus.with_tx p (fun () -> Prometheus.create p "Part" []) with
      | exception Prometheus.Violation _ -> ()
      | _ -> Alcotest.fail "rule should fire again")

let test_rule_on_rel_delete () =
  with_p (fun p ->
      part_schema p;
      ignore (Prometheus.define_class p "Box" []);
      ignore (Prometheus.define_rel p "Holds" ~origin:"Box" ~destination:"Part");
      let removals = ref 0 in
      Prometheus.add_rule p
        (R.make "count_removals"
           (Pevent.Event.On_rel_delete (Some "Holds"))
           (fun _ _ ->
             incr removals;
             true));
      let b = Prometheus.create p "Box" [] in
      let x = Prometheus.create p "Part" [] in
      let r = Prometheus.link p "Holds" ~origin:b ~destination:x in
      Prometheus.unlink p r;
      Alcotest.(check int) "unlink observed" 1 !removals;
      (* deleting an endpoint also removes links and fires the event *)
      let r2 = Prometheus.link p "Holds" ~origin:b ~destination:x in
      ignore r2;
      Prometheus.delete p x;
      Alcotest.(check int) "cascade unlink observed" 2 !removals)

(* --- PCL --------------------------------------------------------------------- *)

let test_pcl_parse () =
  let t = Pcl_lang.Pcl.parse_rule "context Family inv suffix: endswith(self.name, 'aceae')" in
  Alcotest.(check string) "target" "Family" t.Pcl_lang.Pcl.target;
  Alcotest.(check bool) "kind" true (t.Pcl_lang.Pcl.kind = Pcl_lang.Pcl.Inv);
  Alcotest.(check bool) "not warn" false t.Pcl_lang.Pcl.warn;
  let t2 =
    Pcl_lang.Pcl.parse_rule
      "context Name inv warn cap when self.rank = 'Genus' : startswith(self.epithet, 'X')"
  in
  Alcotest.(check bool) "warn flag" true t2.Pcl_lang.Pcl.warn;
  Alcotest.(check bool) "has applicability" true (t2.Pcl_lang.Pcl.applicability <> None);
  match Pcl_lang.Pcl.parse_rule "context Foo frob x: true" with
  | exception Pcl_lang.Pcl.Pcl_error _ -> ()
  | _ -> Alcotest.fail "expected PCL error for unknown kind"

let test_pcl_invariant_enforced () =
  with_p (fun p ->
      ignore
        (Prometheus.define_class p "Family" [ Prometheus.attr "name" V.TString ]);
      ignore (Prometheus.pcl p "context Family inv suffix: endswith(self.name, 'aceae')");
      ignore (Prometheus.create p "Family" [ ("name", str "Rosaceae") ]);
      (match
         Prometheus.with_tx p (fun () ->
             Prometheus.create p "Family" [ ("name", str "Rosa") ])
       with
      | exception Prometheus.Violation _ -> ()
      | _ -> Alcotest.fail "expected PCL violation");
      Alcotest.(check int) "one family" 1 (Prometheus.count p "Family"))

let test_pcl_linkinv () =
  with_p (fun p ->
      ignore (Prometheus.define_class p "N" [ Prometheus.attr "level" V.TInt ]);
      ignore (Prometheus.define_rel p "Under" ~origin:"N" ~destination:"N");
      ignore
        (Prometheus.pcl p
           "context Under linkinv ordered: self.origin.level < self.destination.level");
      let a = Prometheus.create p "N" [ ("level", vint 1) ] in
      let b = Prometheus.create p "N" [ ("level", vint 2) ] in
      ignore (Prometheus.link p "Under" ~origin:a ~destination:b);
      match
        Prometheus.with_tx p (fun () ->
            ignore (Prometheus.link p "Under" ~origin:b ~destination:a))
      with
      | exception Prometheus.Violation _ -> ()
      | _ -> Alcotest.fail "expected linkinv violation")

let test_pcl_when_applicability () =
  with_p (fun p ->
      ignore
        (Prometheus.define_class p "Nm"
           [ Prometheus.attr "rank" V.TString; Prometheus.attr "e" V.TString ]);
      ignore
        (Prometheus.pcl p
           "context Nm inv cap when self.rank = 'Genus' : self.e = upper(self.e)");
      (* non-genus: applicability false, no check *)
      ignore (Prometheus.create p "Nm" [ ("rank", str "Species"); ("e", str "abc") ]);
      (* genus violating *)
      match
        Prometheus.with_tx p (fun () ->
            Prometheus.create p "Nm" [ ("rank", str "Genus"); ("e", str "abc") ])
      with
      | exception Prometheus.Violation _ -> ()
      | _ -> Alcotest.fail "expected violation for genus")

(* --- core facade ----------------------------------------------------------------- *)

let test_whatif () =
  with_p (fun p ->
      part_schema p;
      let before = Prometheus.count p "Part" in
      let speculative =
        Prometheus.whatif p (fun () ->
            ignore (Prometheus.create p "Part" [ ("price", vint 1) ]);
            ignore (Prometheus.create p "Part" [ ("price", vint 2) ]);
            Prometheus.count p "Part")
      in
      Alcotest.(check int) "saw speculative state" (before + 2) speculative;
      Alcotest.(check int) "rolled back" before (Prometheus.count p "Part"))

let test_facade_check_query () =
  with_p (fun p ->
      part_schema p;
      Alcotest.(check (list string)) "clean query" []
        (Prometheus.check_query p "select x.name from Part x");
      Alcotest.(check bool) "bad query flagged" true
        (Prometheus.check_query p "select x.bogus from Widget x" <> []))

let test_facade_query_roundtrip () =
  with_p (fun p ->
      part_schema p;
      ignore (Prometheus.create p "Part" [ ("name", str "bolt"); ("price", vint 3) ]);
      ignore (Prometheus.create p "Part" [ ("name", str "nut"); ("price", vint 2) ]);
      let names =
        Prometheus.rows p "select x.name from Part x order by x.price"
        |> List.map V.as_string
      in
      Alcotest.(check (list string)) "query through facade" [ "nut"; "bolt" ] names)

let () =
  Alcotest.run "rules"
    [
      ( "immediate",
        [
          Alcotest.test_case "invariant abort" `Quick test_invariant_abort;
          Alcotest.test_case "warn action" `Quick test_warn_action;
          Alcotest.test_case "repair action" `Quick test_repair_action;
          Alcotest.test_case "interactive action" `Quick test_interactive_action;
        ] );
      ( "deferred",
        [
          Alcotest.test_case "deferred at commit" `Quick test_deferred_rule_at_commit;
          Alcotest.test_case "min cardinality" `Quick test_min_cardinality_at_commit;
          Alcotest.test_case "priority order" `Quick test_rule_priority_order;
          Alcotest.test_case "remove rule" `Quick test_remove_rule;
          Alcotest.test_case "condition of applicability" `Quick test_applicability_condition;
        ] );
      ( "engine",
        [
          Alcotest.test_case "repair cascade limit" `Quick test_repair_cascade_limit;
          Alcotest.test_case "composite event rule" `Quick test_composite_event_rule;
          Alcotest.test_case "deferred sees final state" `Quick test_deferred_rule_sees_final_state;
          Alcotest.test_case "disable/enable" `Quick test_engine_disable_enable;
          Alcotest.test_case "rel delete rule" `Quick test_rule_on_rel_delete;
        ] );
      ( "pcl",
        [
          Alcotest.test_case "parse" `Quick test_pcl_parse;
          Alcotest.test_case "invariant enforced" `Quick test_pcl_invariant_enforced;
          Alcotest.test_case "linkinv" `Quick test_pcl_linkinv;
          Alcotest.test_case "when applicability" `Quick test_pcl_when_applicability;
        ] );
      ( "facade",
        [
          Alcotest.test_case "what-if" `Quick test_whatif;
          Alcotest.test_case "check_query" `Quick test_facade_check_query;
          Alcotest.test_case "query roundtrip" `Quick test_facade_query_roundtrip;
        ] );
    ]
