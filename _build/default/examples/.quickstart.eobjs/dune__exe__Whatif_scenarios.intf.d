examples/whatif_scenarios.mli:
