examples/library_catalogue.ml: Filename Format List Pmodel Printf Prometheus String Sys
