examples/apium_revision.mli:
