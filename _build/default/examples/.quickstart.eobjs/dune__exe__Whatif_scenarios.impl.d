examples/whatif_scenarios.ml: Classify Database Derivation Filename Flora_gen Icbn List Nomen Option Pmodel Printf Prules Rank Synonymy Sys Tax_schema Taxonomy
