examples/quickstart.mli:
