examples/shapes_classifications.ml: Classify Database Filename List Nomen Pmodel Printf Rank String Synonymy Sys Tax_schema Taxonomy Value
