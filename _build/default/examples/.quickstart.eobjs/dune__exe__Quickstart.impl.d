examples/quickstart.ml: Filename Format List Pmodel Prometheus Sys
