examples/shapes_classifications.mli:
