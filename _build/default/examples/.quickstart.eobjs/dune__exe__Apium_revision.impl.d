examples/apium_revision.ml: Classify Database Derivation Filename Icbn List Nomen Pmodel Printf Prules Rank Sys Tax_schema Taxonomy
