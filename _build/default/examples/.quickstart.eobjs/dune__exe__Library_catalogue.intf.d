examples/library_catalogue.mli:
