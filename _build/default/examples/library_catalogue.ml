(* Multiple overlapping classifications are not just for botany: the
   thesis's introduction motivates them with library catalogues.  This
   example classifies the same books simultaneously by genre, by
   language and by publisher — three overlapping classifications over
   shared leaves — and queries each classification independently,
   demonstrating that the mechanism is generic and orthogonal to the
   classified data (thesis reqs. 11 and 12).

   Run with: dune exec examples/library_catalogue.exe *)

let () =
  let path = Filename.temp_file "library" ".db" in
  let p = Prometheus.open_ path in

  ignore
    (Prometheus.define_class p "Book"
       [ Prometheus.attr "title" Prometheus.TString; Prometheus.attr "year" Prometheus.TInt ]);
  ignore (Prometheus.define_class p "Category" [ Prometheus.attr "name" Prometheus.TString ]);
  (* one generic classification relationship; exclusivity holds only
     within a single classification context *)
  ignore
    (Prometheus.define_rel p "Shelves" ~origin:"Category" ~destination:"Object"
       ~kind:Prometheus.Aggregation ~exclusive:true
       ~attrs:[ Prometheus.attr "note" Prometheus.TString ]);

  let book title year =
    Prometheus.create p "Book" [ ("title", Prometheus.vstr title); ("year", Prometheus.vint year) ]
  in
  let cat name = Prometheus.create p "Category" [ ("name", Prometheus.vstr name) ] in
  let shelve ctx c items =
    List.iter
      (fun b -> ignore (Prometheus.link p "Shelves" ~context:ctx ~origin:c ~destination:b))
      items
  in

  let holmes = book "A Study in Scarlet" 1887 in
  let poirot = book "Murder on the Orient Express" 1934 in
  let dune_b = book "Dune" 1965 in
  let notre_dame = book "Notre-Dame de Paris" 1831 in

  (* classification 1: by genre *)
  let by_genre = Prometheus.create_context p "by-genre" in
  let fiction = cat "Fiction" in
  let crime = cat "Crime" in
  let scifi = cat "Science fiction" in
  shelve by_genre fiction [ crime; scifi; notre_dame ];
  shelve by_genre crime [ holmes; poirot ];
  shelve by_genre scifi [ dune_b ];

  (* classification 2: by language of original publication *)
  let by_lang = Prometheus.create_context p "by-language" in
  let english = cat "English writing" in
  let french = cat "French writing" in
  shelve by_lang english [ holmes; poirot; dune_b ];
  shelve by_lang french [ notre_dame ];

  (* classification 3: by era *)
  let by_era = Prometheus.create_context p "by-era" in
  let c19 = cat "19th century" in
  let c20 = cat "20th century" in
  shelve by_era c19 [ holmes; notre_dame ];
  shelve by_era c20 [ poirot; dune_b ];

  (* the same query, asked per classification context *)
  let books_under root ctx =
    Prometheus.rows
      ~env:[ ("root", Prometheus.VRef root); ("ctx", Prometheus.VRef ctx) ]
      p
      "select b.title from Book b where b in descendants(root, 'Shelves') order by b.title in context ctx"
    |> List.map (function Prometheus.VString s -> s | _ -> "?")
  in
  Printf.printf "Fiction (by genre, recursive): %s\n"
    (String.concat "; " (books_under fiction by_genre));
  Printf.printf "English writing:               %s\n"
    (String.concat "; " (books_under english by_lang));
  Printf.printf "19th century:                  %s\n" (String.concat "; " (books_under c19 by_era));

  (* a book appears in several classifications simultaneously *)
  let n =
    Prometheus.scalar ~env:[ ("b", Prometheus.VRef holmes) ] p "count(b.into('Shelves', null))"
  in
  Format.printf "\"A Study in Scarlet\" is classified %a ways at once.@." Pmodel.Value.pp n;

  (* exclusivity still protects each individual classification *)
  (match
     Prometheus.link p "Shelves" ~context:by_genre ~origin:scifi ~destination:holmes
   with
  | exception Pmodel.Database.Model_error _ ->
      print_endline "Within one classification a book stays on a single shelf (exclusivity enforced)."
  | _ -> assert false);

  Prometheus.close p;
  Sys.remove path;
  (try Sys.remove (path ^ ".journal") with _ -> ());
  print_endline "library_catalogue: done."
