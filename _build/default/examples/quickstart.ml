(* Quickstart: the Prometheus public API in five minutes.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let path = Filename.temp_file "prometheus_quickstart" ".db" in
  let p = Prometheus.open_ path in

  (* 1. Schema: classes and FIRST-CLASS relationship classes.  A
     relationship class has semantics: kind, exclusivity, sharability,
     lifetime dependency, cardinalities, its own attributes. *)
  ignore
    (Prometheus.define_class p "Person"
       [ Prometheus.attr "name" Prometheus.TString; Prometheus.attr "age" Prometheus.TInt ]);
  ignore (Prometheus.define_class p "Company" [ Prometheus.attr "name" Prometheus.TString ]);
  ignore
    (Prometheus.define_rel p "WorksFor" ~origin:"Person" ~destination:"Company"
       ~attrs:[ Prometheus.attr "role" Prometheus.TString ]);

  (* 2. Objects and links. *)
  let ada = Prometheus.create p "Person" [ ("name", Prometheus.vstr "Ada"); ("age", Prometheus.vint 36) ] in
  let alan = Prometheus.create p "Person" [ ("name", Prometheus.vstr "Alan"); ("age", Prometheus.vint 41) ] in
  let acme = Prometheus.create p "Company" [ ("name", Prometheus.vstr "Acme") ] in
  ignore (Prometheus.link p "WorksFor" ~origin:ada ~destination:acme ~attrs:[ ("role", Prometheus.vstr "engineer") ]);
  ignore (Prometheus.link p "WorksFor" ~origin:alan ~destination:acme ~attrs:[ ("role", Prometheus.vstr "analyst") ]);

  (* 3. POOL queries: relationships are queryable objects. *)
  print_endline "Who works at Acme, and as what?";
  List.iter
    (fun row -> Format.printf "  %a@." Pmodel.Value.pp row)
    (Prometheus.rows p
       "select w.origin.name, w.role from WorksFor w where w.destination.name = 'Acme' order by w.origin.name");

  (* 4. Rules: a PCL constraint, enforced from now on. *)
  ignore (Prometheus.pcl p "context Person inv adult: self.age >= 18");
  (match
     Prometheus.with_tx p (fun () ->
         Prometheus.create p "Person" [ ("name", Prometheus.vstr "Kid"); ("age", Prometheus.vint 7) ])
   with
  | exception Prometheus.Violation _ -> print_endline "Rule vetoed the under-age person (transaction aborted)."
  | _ -> assert false);

  (* 5. Multiple overlapping classifications via contexts. *)
  ignore (Prometheus.define_class p "Team" [ Prometheus.attr "name" Prometheus.TString ]);
  ignore
    (Prometheus.define_rel p "MemberOf" ~origin:"Team" ~destination:"Person" ~exclusive:true
       ~kind:Prometheus.Aggregation);
  let org_2024 = Prometheus.create_context p "org-chart-2024" in
  let org_2025 = Prometheus.create_context p "org-chart-2025" in
  let research = Prometheus.create p "Team" [ ("name", Prometheus.vstr "Research") ] in
  let product = Prometheus.create p "Team" [ ("name", Prometheus.vstr "Product") ] in
  ignore (Prometheus.link p "MemberOf" ~context:org_2024 ~origin:research ~destination:ada);
  ignore (Prometheus.link p "MemberOf" ~context:org_2025 ~origin:product ~destination:ada);
  let team_in ctx =
    match
      Prometheus.rows ~env:[ ("ada", Prometheus.VRef ada); ("ctx", Prometheus.VRef ctx) ] p
        "select r.origin.name from Person x, x.into('MemberOf') r where x = ada in context ctx"
    with
    | [ Prometheus.VString t ] -> t
    | _ -> "?"
  in
  Format.printf "Ada is in %s in 2024 and in %s in 2025 — same person, two overlapping classifications.@."
    (team_in org_2024) (team_in org_2025);

  Prometheus.close p;
  Sys.remove path;
  (try Sys.remove (path ^ ".journal") with _ -> ());
  print_endline "quickstart: done."
