(* The thesis's figure-3 worked example, end to end: a taxonomic
   revision of Apium / Heliosciadium with automatic ICBN name
   derivation.

   Run with: dune exec examples/apium_revision.exe *)

open Pmodel
open Taxonomy

let () =
  let path = Filename.temp_file "apium" ".db" in
  let db = Database.open_ path in
  Tax_schema.install db;
  let engine = Prules.Engine.create db in
  Icbn.install engine;

  (* --- nomenclatural background (published names and types) ---------- *)
  let linnaeus = Nomen.create_author db ~name:"Carl von Linnaeus" ~abbreviation:"L." in
  let lag = Nomen.create_author db ~name:"Lagasca" ~abbreviation:"Lag." in
  let jacq = Nomen.create_author db ~name:"Jacquin" ~abbreviation:"Jacq." in
  let koch = Nomen.create_author db ~name:"Koch" ~abbreviation:"W.D.J.Koch." in

  let apium = Nomen.create_name db ~epithet:"Apium" ~rank:Rank.Genus ~year:1753 ~author:linnaeus () in
  let graveolens =
    Nomen.create_name db ~epithet:"graveolens" ~rank:Rank.Species ~year:1753 ~author:linnaeus
      ~placed_in:apium ()
  in
  let herb_cliff =
    Nomen.create_specimen db ~collector:"C. von Linnaeus #Herb.Cliff. 107" ~number:107 ~herbarium:"BM" ()
  in
  ignore (Nomen.set_type db ~name:graveolens ~target:herb_cliff ~kind:"lectotype");
  ignore (Nomen.set_type db ~name:apium ~target:graveolens ~kind:"holotype");

  let repens =
    Nomen.create_name db ~epithet:"repens" ~rank:Rank.Species ~year:1821 ~author:lag
      ~basionym_author:jacq ~placed_in:apium ()
  in
  let repens_spec = Nomen.create_specimen db ~collector:"Jacquin" ~number:1 () in
  ignore (Nomen.set_type db ~name:repens ~target:repens_spec ~kind:"holotype");

  let helio = Nomen.create_name db ~epithet:"Heliosciadium" ~rank:Rank.Genus ~year:1824 ~author:koch () in
  let nodiflorum =
    Nomen.create_name db ~epithet:"nodiflorum" ~rank:Rank.Species ~year:1824 ~author:koch
      ~basionym_author:linnaeus ~placed_in:helio ()
  in
  let nodiflorum_spec =
    Nomen.create_specimen db ~collector:"W.D.J.Koch, Nova Acta 12(1)" ~number:12 ()
  in
  ignore (Nomen.set_type db ~name:nodiflorum ~target:nodiflorum_spec ~kind:"holotype");
  ignore (Nomen.set_type db ~name:helio ~target:nodiflorum ~kind:"holotype");

  print_endline "Published names:";
  List.iter
    (fun n -> Printf.printf "  %s  (%s)\n" (Nomen.full_name db n) (Rank.to_string (Nomen.rank db n)))
    [ apium; graveolens; repens; helio; nodiflorum ];

  (* --- the revision: classify specimens, then derive names ------------ *)
  let ctx = Classify.create_classification db ~description:"Raguenaud 2000" "revision" in
  let taxon1 = Classify.create_taxon db ~rank:Rank.Genus ~notes:"Taxon 1 of fig. 3" () in
  let taxon2 = Classify.create_taxon db ~rank:Rank.Species ~notes:"Taxon 2 of fig. 3" () in
  ignore (Classify.circumscribe db ~ctx ~group:taxon1 ~item:taxon2 ~reason:"shared umbels" ());
  ignore (Classify.circumscribe db ~ctx ~group:taxon2 ~item:repens_spec ~reason:"leaf shape" ());
  ignore (Classify.circumscribe db ~ctx ~group:taxon2 ~item:nodiflorum_spec ~reason:"leaf shape" ());

  print_endline "\nDeriving names for the new classification (ICBN)...";
  let assignments = Derivation.derive db ~ctx ~root:taxon1 ~year:2000 ~author:lag () in
  List.iter
    (fun a ->
      let describe = function
        | Derivation.Existing n -> Printf.sprintf "existing name reused: %s" (Nomen.full_name db n)
        | Derivation.New_combination { name; basionym } ->
            Printf.sprintf "NEW COMBINATION published: %s  (basionym %s)" (Nomen.full_name db name)
              (Nomen.full_name db basionym)
        | Derivation.New_name { name; _ } ->
            Printf.sprintf "new name published: %s" (Nomen.full_name db name)
      in
      Printf.printf "  taxon #%d at rank %-8s -> %s\n" a.Derivation.taxon
        (Rank.to_string a.Derivation.rank)
        (describe a.Derivation.outcome))
    assignments;

  (* As the thesis explains: Taxon 1 becomes Heliosciadium (the only
     genus-rank name reachable from the type specimens), and Taxon 2,
     whose oldest species-rank name is Apium repens (Jacq.)Lag. 1821,
     needs the previously-unpublished combination Heliosciadium repens. *)
  Database.close db;
  Sys.remove path;
  (try Sys.remove (path ^ ".journal") with _ -> ());
  print_endline "\napium_revision: done."
