(* What-if scenarios (thesis 7.1.4): a taxonomist experiments with a
   speculative reclassification — "what names would result if I moved
   this species?" — observes the consequences, and rolls everything
   back.  The ICBN rules stay armed throughout and veto illegal moves.

   Run with: dune exec examples/whatif_scenarios.exe *)

open Pmodel
open Taxonomy

let () =
  let path = Filename.temp_file "whatif" ".db" in
  let db = Database.open_ path in
  Tax_schema.install db;
  let engine = Prules.Engine.create db in
  Icbn.install engine;

  (* a small generated flora with names, types and one classification *)
  let flora =
    Flora_gen.generate db
      ~params:{ Flora_gen.families = 1; genera_per_family = 2; species_per_genus = 3; specimens_per_species = 2; seed = 5 }
      ()
  in
  let ctx = flora.Flora_gen.ctx in
  let root = List.hd flora.Flora_gen.root_taxa in
  let sp = List.hd flora.Flora_gen.species_taxa in
  let g1 = Classify.group_of db ~ctx sp |> Option.get in
  let g2 = List.find (fun g -> g <> g1) flora.Flora_gen.genus_taxa in
  let show_taxon t =
    match Classify.calculated_name db t with
    | Some n -> Nomen.full_name db n
    | None -> Printf.sprintf "taxon#%d" t
  in

  (* baseline derivation *)
  ignore (Derivation.derive db ~ctx ~root ~year:2001 ());
  Printf.printf "today, the species is called:       %s\n" (show_taxon sp);

  (* WHAT IF we moved it to the sibling genus? run the speculative
     reclassification + rederivation inside a transaction, read off the
     result, then abort: the database is untouched. *)
  Database.begin_tx db;
  Classify.move db ~ctx ~item:sp ~group:g2 ~reason:"what-if experiment" ();
  ignore (Derivation.derive db ~ctx ~root ~year:2002 ());
  let speculative = show_taxon sp in
  Database.abort db;
  Printf.printf "if moved to the other genus, it would become: %s\n" speculative;
  Printf.printf "after rollback it is still:          %s\n" (show_taxon sp);
  assert (Classify.group_of db ~ctx sp = Some g1);

  (* rules keep guarding inside what-if scenarios too *)
  Database.begin_tx db;
  let fresh_genus = Classify.create_taxon db ~rank:Rank.Genus () in
  (match
     Classify.circumscribe db ~ctx ~group:sp
       ~item:fresh_genus (* a species cannot contain a genus *) ()
   with
  | exception Prules.Rule.Violation _ ->
      print_endline "the ICBN rank rule vetoed an upside-down placement, even mid-experiment"
  | _ -> assert false);
  Database.abort db;

  (* counting the fallout of a speculative change without committing *)
  let ctx2 = Flora_gen.perturb db flora ~fraction:0.5 ~name:"speculative revision" () in
  let syns = Synonymy.find db ~ctx_a:ctx ~ctx_b:ctx2 in
  Printf.printf "a speculative revision produced %d synonym pairs (%d full, %d pro parte)\n"
    (List.length syns)
    (List.length (List.filter (fun s -> s.Synonymy.extent = Synonymy.Full) syns))
    (List.length (List.filter (fun s -> s.Synonymy.extent = Synonymy.Pro_parte) syns));

  Database.close db;
  Sys.remove path;
  (try Sys.remove (path ^ ".journal") with _ -> ());
  print_endline "whatif_scenarios: done."
