(* The thesis's figure-4 scenario: four successive taxonomists classify
   an evolving set of "shape" specimens in overlapping, conflicting
   ways — and Prometheus keeps all classifications, compares them, and
   infers synonyms from circumscriptions.

   Run with: dune exec examples/shapes_classifications.exe *)

open Pmodel
open Taxonomy
module OidSet = Database.OidSet

let () =
  let path = Filename.temp_file "shapes" ".db" in
  let db = Database.open_ path in
  Tax_schema.install db;

  (* specimens *)
  let spec name = Nomen.create_specimen db ~collector:name () in
  let white_square = spec "white square" in
  let white_rect = spec "white rectangle" in
  let grey_tri = spec "light grey triangle" in
  let black_oval = spec "black oval" in
  let dark_circle = spec "dark grey circle" in
  let diamond = spec "diamond" in
  let label s =
    match Database.get_attr db s "collector" with Value.VString v -> v | _ -> "?"
  in

  let group _ctx rank = Classify.create_taxon db ~rank () in
  let put ctx g items =
    List.iter (fun i -> ignore (Classify.circumscribe db ~ctx ~group:g ~item:i ())) items
  in

  (* taxonomist 1: by shape, two levels *)
  let c1 = Classify.create_classification db "taxonomist 1 (1820): by shape" in
  let shapes1 = group c1 Rank.Genus in
  let squares1 = group c1 Rank.Species and tri1 = group c1 Rank.Species and ovals1 = group c1 Rank.Species in
  put c1 shapes1 [ squares1; tri1; ovals1 ];
  put c1 squares1 [ white_square; white_rect ];
  put c1 tri1 [ grey_tri ];
  put c1 ovals1 [ black_oval; dark_circle ];

  (* taxonomist 2: by shape with an intermediate level *)
  let c2 = Classify.create_classification db "taxonomist 2 (1850): finer shapes" in
  let shapes2 = group c2 Rank.Genus in
  let angled2 = group c2 Rank.Sectio and round2 = group c2 Rank.Sectio in
  let squares2 = group c2 Rank.Species and rect2 = group c2 Rank.Species in
  let ovals2 = group c2 Rank.Species and circles2 = group c2 Rank.Species in
  put c2 shapes2 [ angled2; round2 ];
  put c2 angled2 [ squares2; rect2 ];
  put c2 round2 [ ovals2; circles2 ];
  put c2 squares2 [ white_square ];
  put c2 rect2 [ white_rect ];
  put c2 ovals2 [ black_oval ];
  put c2 circles2 [ dark_circle; grey_tri ];

  (* taxonomist 3: by brightness, ignoring shape (and adding diamonds) *)
  let c3 = Classify.create_classification db "taxonomist 3 (1900): by brightness" in
  let shapes3 = group c3 Rank.Genus in
  let light3 = group c3 Rank.Species and dark3 = group c3 Rank.Species in
  put c3 shapes3 [ light3; dark3 ];
  put c3 light3 [ white_square; white_rect; diamond ];
  put c3 dark3 [ grey_tri; black_oval; dark_circle ];

  Printf.printf "three overlapping classifications of %d specimens coexist:\n"
    6;
  List.iter
    (fun (ctx, root) ->
      let n = OidSet.cardinal (Classify.specimens_of db ~ctx root) in
      let name =
        match Database.get_attr db ctx "name" with Value.VString s -> s | _ -> "?"
      in
      Printf.printf "  %-40s circumscribes %d specimens\n" name n)
    [ (c1, shapes1); (c2, shapes2); (c3, shapes3) ];

  (* inferred synonymy between classifications 1 and 3 *)
  print_endline "\nSpecimen-based synonyms between taxonomist 1 and taxonomist 3:";
  List.iter
    (fun s ->
      Printf.printf "  taxon#%d ~ taxon#%d: %s, %s (%d shared specimens)\n" s.Synonymy.taxon_a
        s.Synonymy.taxon_b
        (match s.Synonymy.extent with Synonymy.Full -> "FULL" | Synonymy.Pro_parte -> "pro parte")
        (match s.Synonymy.typ with Synonymy.Homotypic -> "homotypic" | Synonymy.Heterotypic -> "heterotypic")
        s.Synonymy.shared_specimens)
    (Synonymy.find db ~ctx_a:c1 ~ctx_b:c3);

  (* the same specimen has a different position in each classification *)
  print_endline "\nWhere is the dark grey circle in each classification?";
  List.iter
    (fun ctx ->
      let cname = match Database.get_attr db ctx "name" with Value.VString s -> s | _ -> "?" in
      match Classify.group_of db ~ctx dark_circle with
      | Some g ->
          let siblings =
            Classify.members db ~ctx g |> List.filter (Tax_schema.is_specimen db)
            |> List.map label
          in
          Printf.printf "  %-40s grouped with: %s\n" cname (String.concat ", " siblings)
      | None -> Printf.printf "  %-40s not classified\n" cname)
    [ c1; c2; c3 ];

  (* suspicious one-specimen overlaps often flag misplacements *)
  (match Synonymy.suspicious_overlaps db ~ctx_a:c1 ~ctx_b:c2 with
  | [] -> ()
  | l -> Printf.printf "\n%d suspicious single-specimen overlaps between 1 and 2 (possible misplacements)\n" (List.length l));

  Database.close db;
  Sys.remove path;
  (try Sys.remove (path ^ ".journal") with _ -> ());
  print_endline "\nshapes_classifications: done."
