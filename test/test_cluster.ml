(* Cluster-tier tests: the replica-fleet router, health-checked
   failover, replica promotion, and chained replication.

   Covered here, per the cluster design:
   - the pure election rule: highest durable LSN wins, lowest address
     breaks ties, and the result is independent of candidate order —
     determinism is the split-brain defence;
   - the pipelined backend pool: typed answers over the binary
     protocol, Backend_down (not a hang) against a dead port, and the
     fail-fast backoff gate;
   - stopping a feed with a peer-repair PageFetch in flight answers
     promptly (refusal or close) instead of hanging the fetcher to its
     timeout;
   - the acceptance fault sweep: kill the primary under concurrent
     read/write load through the router with read-your-writes tokens —
     a replica is promoted, acknowledged writes survive, tokens are
     never served stale, and the old primary re-bootstraps off the new
     primary's feed to a byte-identical file;
   - two concurrent elections over the same fleet converge on ONE new
     primary (and an election aborts while a primary is reachable);
   - chained replication: primary -> cascading replica -> downstream
     replica, all three files byte-identical.

   Same in-process style as test_serving.ml: every server runs on its
   own thread on an ephemeral port; HTTP clients are raw sockets. *)

open Pmodel
module S = Pstore.Store
module Feed = Prepl.Feed
module R = Prepl.Replica
module W = Prepl.Wire
module L = Prepl.Link
module BP = Pserver.Backend_pool
module Client = Pserver.Client
module Topo = Pcluster.Topology
module Promote = Pcluster.Promote
module Router = Pcluster.Router

let tmp_counter = ref 0

let tmp_path () =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "prom_cluster_%d_%d.db" (Unix.getpid ()) !tmp_counter)

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".journal"; path ^ ".replid"; path ^ ".replid.tmp"; path ^ ".snap" ]

let wait ?(timeout = 30.) msg cond =
  let deadline = Unix.gettimeofday () +. timeout in
  while (not (cond ())) && Unix.gettimeofday () < deadline do
    Thread.delay 0.02
  done;
  if not (cond ()) then Alcotest.failf "timeout waiting for %s" msg

let read_disk path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- raw-socket HTTP client -------------------------------------------- *)

let recv_all fd =
  let b = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes b chunk 0 n;
        go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  go ();
  Buffer.contents b

let send_str fd s =
  let pos = ref 0 and len = String.length s in
  let buf = Bytes.unsafe_of_string s in
  while !pos < len do
    pos := !pos + Unix.write fd buf !pos (len - !pos)
  done

let talk_raw port raw =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      send_str fd raw;
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      recv_all fd)

let get ?(headers = []) port target =
  let hs =
    String.concat "" (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
  in
  talk_raw port (Printf.sprintf "GET %s HTTP/1.0\r\nHost: localhost\r\n%s\r\n" target hs)

let post port target =
  talk_raw port (Printf.sprintf "POST %s HTTP/1.0\r\nHost: localhost\r\n\r\n" target)

let status_of response =
  match String.index_opt response '\r' with
  | Some i -> String.sub response 0 i
  | None -> response

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None else if String.sub hay i nn = needle then Some i else go (i + 1)
  in
  go 0

let contains hay needle = find_sub hay needle <> None

let body_of response =
  match find_sub response "\r\n\r\n" with
  | Some i -> String.sub response (i + 4) (String.length response - i - 4)
  | None -> ""

(* Case-insensitive header lookup: the router re-emits backend headers
   in the lowercased form the binary protocol carries them in. *)
let header_of response name =
  let name = String.lowercase_ascii name in
  let head =
    match find_sub response "\r\n\r\n" with
    | Some i -> String.sub response 0 i
    | None -> response
  in
  List.find_map
    (fun line ->
      match String.index_opt line ':' with
      | Some i
        when String.lowercase_ascii (String.sub line 0 i) = name
             && String.length line > i + 1 ->
          Some (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
      | _ -> None)
    (String.split_on_char '\n' (String.concat "" (String.split_on_char '\r' head)))

let lsn_of response =
  Option.bind (header_of response "x-pdb-lsn") int_of_string_opt

let count_sub hay needle =
  let nn = String.length needle in
  let rec go i acc =
    match find_sub (String.sub hay i (String.length hay - i)) needle with
    | None -> acc
    | Some j -> go (i + j + nn) (acc + 1)
  in
  if nn = 0 then 0 else go 0 0

let taxon_query = "/query?q=select%20t.rank%20from%20Taxon%20t"

(* --- fixtures ----------------------------------------------------------- *)

(* Seed a database file with the taxonomy schema so /create works. *)
let seed path =
  let db = Database.open_ path in
  Taxonomy.Tax_schema.install db;
  Database.close db

type live_node = {
  ln_node : Promote.node;
  ln_path : string;
  ln_port : int; (* HTTP *)
  ln_bport : int; (* binary protocol (Ping/Ctl/Hreq) *)
  ln_stop : bool ref;
  ln_thread : Thread.t;
}

(* Serve a cluster node (HTTP + binary, both ephemeral) on its own
   thread; block until both ports are known. *)
let start_node ~path (node : Promote.node) : live_node =
  let stop = ref false in
  let m = Mutex.create () and cv = Condition.create () in
  let pbox = ref 0 and bbox = ref 0 in
  let set box p =
    Mutex.lock m;
    box := p;
    Condition.broadcast cv;
    Mutex.unlock m
  in
  let th =
    Thread.create
      (fun () ->
        try
          Promote.serve node ~stop ~ready:(set pbox) ~binary_port:0
            ~binary_ready:(set bbox) ~port:0 ()
        with e -> Printf.eprintf "node died: %s\n%!" (Printexc.to_string e))
      ()
  in
  Mutex.lock m;
  while !pbox = 0 || !bbox = 0 do
    Condition.wait cv m
  done;
  Mutex.unlock m;
  { ln_node = node; ln_path = path; ln_port = !pbox; ln_bport = !bbox; ln_stop = stop; ln_thread = th }

(* Abrupt death: stop serving (HTTP and binary both go dark), then tear
   the node's replication machinery down. *)
let kill_node (ln : live_node) =
  if not !(ln.ln_stop) then begin
    ln.ln_stop := true;
    (try ignore (get ln.ln_port "/") with _ -> ());
    (try Thread.join ln.ln_thread with _ -> ());
    Promote.shutdown ln.ln_node
  end

let feed_port (node : Promote.node) =
  match node.Promote.n_state with
  | Promote.Leading l -> l.l_fsrv.Feed.port
  | Promote.Following _ -> Alcotest.fail "node is not leading"

let is_leading (node : Promote.node) =
  match node.Promote.n_state with Promote.Leading _ -> true | Promote.Following _ -> false

let mk_follower ~upstream path =
  match
    Promote.create_following ~readers:1 ~path ~host:"127.0.0.1" ~repl_port:0
      ~upstream ()
  with
  | Ok n -> n
  | Error e -> Alcotest.failf "create_following: %s" e

type live_router = {
  lr_router : Router.t;
  lr_port : int;
  lr_stop : bool ref;
  lr_thread : Thread.t;
}

let start_router ?(sync_writes = false) backends : live_router =
  let r =
    Router.create ~sync_writes ~probe_every_s:0.05 ~fail_threshold:3 backends
  in
  let stop = ref false in
  let m = Mutex.create () and cv = Condition.create () in
  let pbox = ref 0 in
  let th =
    Thread.create
      (fun () ->
        try
          Router.serve r ~stop
            ~ready:(fun p ->
              Mutex.lock m;
              pbox := p;
              Condition.broadcast cv;
              Mutex.unlock m)
            ~port:0 ()
        with e -> Printf.eprintf "router died: %s\n%!" (Printexc.to_string e))
      ()
  in
  Mutex.lock m;
  while !pbox = 0 do
    Condition.wait cv m
  done;
  Mutex.unlock m;
  { lr_router = r; lr_port = !pbox; lr_stop = stop; lr_thread = th }

let stop_router (lr : live_router) =
  if not !(lr.lr_stop) then begin
    lr.lr_stop := true;
    (try ignore (get lr.lr_port "/") with _ -> ());
    try Thread.join lr.lr_thread with _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* The election rule (pure)                                            *)
(* ------------------------------------------------------------------ *)

let test_elect_rule () =
  Alcotest.(check (option string))
    "highest LSN wins" (Some "b:1")
    (Topo.elect [ ("a:1", 5); ("b:1", 9) ]);
  Alcotest.(check (option string))
    "equal LSN: lowest address wins" (Some "a:1")
    (Topo.elect [ ("c:1", 7); ("a:1", 7); ("b:1", 7) ]);
  Alcotest.(check (option string)) "no candidates" None (Topo.elect []);
  (* order-independence: every permutation elects the same winner *)
  let cands = [ ("n2:9002", 40); ("n1:9001", 41); ("n3:9003", 41) ] in
  let rec perms = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( != ) x) l)))
          l
  in
  List.iter
    (fun p ->
      Alcotest.(check (option string))
        "permutation-invariant" (Some "n1:9001") (Topo.elect p))
    (perms cands)

(* ------------------------------------------------------------------ *)
(* Backend pool                                                        *)
(* ------------------------------------------------------------------ *)

let test_backend_pool () =
  let path = tmp_path () in
  seed path;
  let node =
    Promote.create_leading ~readers:1 ~path ~host:"127.0.0.1" ~repl_port:0 ()
  in
  let ln = start_node ~path node in
  Fun.protect
    ~finally:(fun () ->
      kill_node ln;
      cleanup path)
    (fun () ->
      let pool = BP.create ~host:"127.0.0.1" ~port:ln.ln_bport () in
      Fun.protect
        ~finally:(fun () -> BP.close pool)
        (fun () ->
          (* typed ping: a leading cluster node names its role, feed *)
          let p = BP.ping pool in
          Alcotest.(check string) "role" "primary" p.Client.p_role;
          Alcotest.(check int) "repl port" (feed_port node) p.Client.p_repl_port;
          Alcotest.(check bool) "stream id minted" true (p.Client.p_stream_id <> 0);
          (* HTTP-over-binary: mutate, then read back *)
          let st, hdrs, _ = BP.http pool ~meth:"POST" ~target:"/create?class=Taxon&rank=genus" in
          Alcotest.(check int) "create ok" 200 st;
          Alcotest.(check bool) "write acks an LSN" true
            (List.mem_assoc "x-pdb-lsn" hdrs);
          (* read-your-writes over the binary protocol: the token makes
             the backend wait out any snapshot lag *)
          let tok = List.assoc "x-pdb-lsn" hdrs in
          let st, _, body =
            BP.http pool
              ~headers:[ ("x-pdb-min-lsn", tok) ]
              ~meth:"GET" ~target:taxon_query
          in
          Alcotest.(check int) "query ok" 200 st;
          Alcotest.(check int) "row visible" 1 (count_sub body "genus");
          (* unknown control verb is a typed error, not a hang *)
          (match BP.ctl pool ~verb:"frobnicate" ~arg:"" with
          | Client.Err _ -> ()
          | Client.Ok v -> Alcotest.failf "bogus verb accepted: %s" v));
      (* a dead backend fails fast with Backend_down, and the armed
         backoff gate keeps later requests fail-fast too *)
      let dead = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.bind dead (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      let dport =
        match Unix.getsockname dead with Unix.ADDR_INET (_, p) -> p | _ -> 0
      in
      Unix.close dead;
      let pool = BP.create ~host:"127.0.0.1" ~port:dport () in
      Fun.protect
        ~finally:(fun () -> BP.close pool)
        (fun () ->
          let t0 = Unix.gettimeofday () in
          (match BP.query pool "select 1" with
          | _ -> Alcotest.fail "query against a dead port succeeded"
          | exception Client.Backend_down _ -> ());
          (match BP.query pool "select 1" with
          | _ -> Alcotest.fail "second query against a dead port succeeded"
          | exception Client.Backend_down _ -> ());
          Alcotest.(check bool) "fail-fast, no hang" true
            (Unix.gettimeofday () -. t0 < 5.)))

(* ------------------------------------------------------------------ *)
(* Feed shutdown vs in-flight PageFetch (satellite)                    *)
(* ------------------------------------------------------------------ *)

(* A peer-repair fetch racing the feed's shutdown must be answered
   promptly — the typed refusal (empty PageData) or a closed link —
   never left unanswered until the fetcher's multi-second timeout. *)
let test_stop_with_fetch_in_flight () =
  let path = tmp_path () in
  let s = S.open_ path in
  Fun.protect
    ~finally:(fun () ->
      (try S.close s with _ -> ());
      cleanup path)
    (fun () ->
      for i = 1 to 4 do
        S.with_tx s (fun () -> S.put s ~oid:i (String.make 900 'x'))
      done;
      let feed = Feed.create s in
      let srv = Feed.serve feed ~port:0 in
      let link = L.connect ~host:"127.0.0.1" ~port:srv.Feed.port in
      (* caught-up hello: the handler parks in its streaming wait *)
      W.to_link link (W.Hello { stream_id = Feed.stream_id feed; last_lsn = S.lsn s });
      Thread.delay 0.1;
      let t0 = Unix.gettimeofday () in
      let stopper = Thread.create (fun () -> Feed.stop_server srv) () in
      (try W.to_link link (W.PageFetch { lsn = S.lsn s; pages = [ 0 ] })
       with L.Link_down _ -> ());
      let outcome =
        try
          match W.from_link link with
          | W.PageData { pages = []; _ } -> `Refused
          | W.PageData _ -> `Served
          | _ -> `Other
        with L.Link_down _ | W.Wire_error _ -> `Dropped
      in
      Thread.join stopper;
      let elapsed = Unix.gettimeofday () -. t0 in
      Feed.detach feed;
      (match outcome with
      | `Refused | `Served | `Dropped -> ()
      | `Other -> Alcotest.fail "unexpected frame answering a racing PageFetch");
      if elapsed >= 8. then
        Alcotest.failf "shutdown left the fetcher hanging %.1fs" elapsed)

(* ------------------------------------------------------------------ *)
(* Chained replication                                                 *)
(* ------------------------------------------------------------------ *)

let test_chained_replication () =
  let p1 = tmp_path () and p2 = tmp_path () and p3 = tmp_path () in
  seed p1;
  let n1 = Promote.create_leading ~readers:1 ~path:p1 ~host:"127.0.0.1" ~repl_port:0 () in
  let db1 =
    match n1.Promote.n_state with
    | Promote.Leading l -> l.l_db
    | _ -> assert false
  in
  let s1 = Database.store db1 in
  (* middle node: follows the primary AND republishes through a cascade
     feed on its own port *)
  let n2 =
    match
      Promote.create_following ~readers:1 ~cascade:true ~path:p2
        ~host:"127.0.0.1" ~repl_port:0
        ~upstream:(Printf.sprintf "127.0.0.1:%d" (feed_port n1))
        ()
    with
    | Ok n -> n
    | Error e -> Alcotest.failf "middle replica: %s" e
  in
  let cascade_port =
    match n2.Promote.n_cascade_state with
    | Some (_, srv) -> srv.Feed.port
    | None -> Alcotest.fail "cascade feed did not come up"
  in
  (* downstream replica chains off the MIDDLE node, not the primary *)
  let sess3 = R.start ~host:"127.0.0.1" ~port:cascade_port p3 in
  Fun.protect
    ~finally:(fun () ->
      (try R.stop sess3 with _ -> ());
      Promote.shutdown n2;
      Promote.shutdown n1;
      List.iter cleanup [ p1; p2; p3 ])
    (fun () ->
      for i = 100 to 110 do
        S.with_tx s1 (fun () -> S.put s1 ~oid:i (String.make (200 + i) 'c'))
      done;
      let lsn1 () = S.lsn s1 in
      wait "middle catches up" (fun () ->
          R.Apply.last_lsn
            (match n2.Promote.n_state with
            | Promote.Following f -> f.f_sess.R.apply
            | _ -> Alcotest.fail "middle stopped following")
          = lsn1 ());
      wait "downstream catches up through the chain" (fun () ->
          R.Apply.last_lsn sess3.R.apply = lsn1 ());
      Alcotest.(check bool) "all three files byte-identical" true
        (read_disk p1 = read_disk p2 && read_disk p2 = read_disk p3);
      (* the chain inherits ONE stream id: LSNs stay comparable *)
      Alcotest.(check int) "downstream shares the primary's stream id"
        (Feed.stream_id
           (match n1.Promote.n_state with
           | Promote.Leading l -> l.l_feed
           | _ -> assert false))
        (R.Apply.stream_id sess3.R.apply))

(* ------------------------------------------------------------------ *)
(* The acceptance fault sweep: failover under load                     *)
(* ------------------------------------------------------------------ *)

let test_failover_under_load () =
  let p1 = tmp_path () and p2 = tmp_path () and p3 = tmp_path () in
  seed p1;
  let n1 = Promote.create_leading ~readers:1 ~path:p1 ~host:"127.0.0.1" ~repl_port:0 () in
  let upstream = Printf.sprintf "127.0.0.1:%d" (feed_port n1) in
  let l1 = start_node ~path:p1 n1 in
  let n2 = mk_follower ~upstream p2 in
  let l2 = start_node ~path:p2 n2 in
  let n3 = mk_follower ~upstream p3 in
  let l3 = start_node ~path:p3 n3 in
  let lr =
    start_router ~sync_writes:true
      [
        ("127.0.0.1", l1.ln_bport);
        ("127.0.0.1", l2.ln_bport);
        ("127.0.0.1", l3.ln_bport);
      ]
  in
  let rport = lr.lr_port in
  Fun.protect
    ~finally:(fun () ->
      stop_router lr;
      List.iter kill_node [ l1; l2; l3 ];
      List.iter cleanup [ p1; p2; p3 ])
    (fun () ->
      let acked = ref 0 and last_lsn = ref 0 in
      let write () =
        let resp = post rport "/create?class=Taxon&rank=genus" in
        if status_of resp = "HTTP/1.0 200 OK" then begin
          (match lsn_of resp with
          | Some l -> if l > !last_lsn then last_lsn := l
          | None -> ());
          incr acked;
          true
        end
        else false
      in
      (* before the fault: writes ack and read-your-writes holds
         through the router *)
      for _ = 1 to 5 do
        ignore (write ())
      done;
      Alcotest.(check int) "initial writes acknowledged" 5 !acked;
      let r1 =
        get ~headers:[ ("X-PDB-Min-LSN", string_of_int !last_lsn) ] rport taxon_query
      in
      Alcotest.(check string) "tokened read through the router" "HTTP/1.0 200 OK"
        (status_of r1);
      Alcotest.(check int) "router read sees every acked write" !acked
        (count_sub (body_of r1) "genus");
      (* /stats works against the router (pdb stats --url) *)
      let st = body_of (get rport "/stats") in
      Alcotest.(check bool) "router stats has a cluster section" true
        (contains st "\"cluster\"" && contains st "\"backends\"");
      (* concurrent load while the primary dies *)
      let stop_load = ref false in
      let violations = ref 0 in
      let reader =
        Thread.create
          (fun () ->
            while not !stop_load do
              let tok = !last_lsn in
              let resp =
                get ~headers:[ ("X-PDB-Min-LSN", string_of_int tok) ] rport taxon_query
              in
              (if status_of resp = "HTTP/1.0 200 OK" then
                 match lsn_of resp with
                 | Some served when served < tok -> incr violations
                 | _ -> ());
              Thread.delay 0.01
            done)
          ()
      in
      let writer =
        Thread.create
          (fun () ->
            while not !stop_load do
              ignore (write ());
              Thread.delay 0.02
            done)
          ()
      in
      Thread.delay 0.3;
      kill_node l1; (* abrupt primary death *)
      let before = !acked in
      wait ~timeout:40. "writes resume on the promoted replica" (fun () ->
          !acked > before);
      Thread.delay 0.3;
      stop_load := true;
      Thread.join reader;
      Thread.join writer;
      Alcotest.(check int) "zero read-your-writes violations" 0 !violations;
      (* exactly one replica was promoted *)
      Alcotest.(check bool) "exactly one new primary" true
        (is_leading n2 <> is_leading n3);
      let newp, newp_path = if is_leading n2 then (n2, p2) else (n3, p3) in
      let other_sess () =
        match (if is_leading n2 then n3 else n2).Promote.n_state with
        | Promote.Following f -> f.f_sess
        | Promote.Leading _ -> Alcotest.fail "both replicas promoted"
      in
      let new_store () =
        match newp.Promote.n_state with
        | Promote.Leading l -> Database.store l.l_db
        | _ -> Alcotest.fail "new primary stopped leading"
      in
      (* the surviving replica was re-pointed at the new primary *)
      wait "surviving replica follows the new primary" (fun () ->
          (other_sess ()).R.port = feed_port newp);
      wait "surviving replica catches up" (fun () ->
          R.Apply.last_lsn (other_sess ()).R.apply = S.lsn (new_store ()));
      (* zero acknowledged writes lost: every acked create is a row *)
      let fin =
        get ~headers:[ ("X-PDB-Min-LSN", string_of_int !last_lsn) ] rport taxon_query
      in
      Alcotest.(check string) "post-failover read ok" "HTTP/1.0 200 OK" (status_of fin);
      let rows = count_sub (body_of fin) "genus" in
      if rows < !acked then
        Alcotest.failf "lost acknowledged writes: %d acked, %d rows" !acked rows;
      (* the old primary re-bootstraps off the new primary's feed: its
         stale stream id forces a snapshot, converging byte-identically
         (acknowledged-but-unreplicated state is discarded with its
         incarnation — which is why acks are semi-sync) *)
      let sess = R.start ~host:"127.0.0.1" ~port:(feed_port newp) p1 in
      Fun.protect
        ~finally:(fun () -> try R.stop sess with _ -> ())
        (fun () ->
          wait "old primary converges on the new stream" (fun () ->
              R.Apply.stream_id sess.R.apply
              = Feed.stream_id
                  (match newp.Promote.n_state with
                  | Promote.Leading l -> l.l_feed
                  | _ -> assert false)
              && R.Apply.last_lsn sess.R.apply = S.lsn (new_store ()));
          Alcotest.(check bool) "re-bootstrap used a snapshot" true
            (sess.R.apply.R.Apply.snapshots_loaded >= 1);
          Alcotest.(check bool) "old primary byte-identical with new primary" true
            (read_disk p1 = read_disk newp_path)))

(* ------------------------------------------------------------------ *)
(* Election edges                                                      *)
(* ------------------------------------------------------------------ *)

(* An election with a reachable primary aborts: the old primary
   rejoining mid-election wins by default instead of being fenced. *)
let test_election_aborts_on_live_primary () =
  let p1 = tmp_path () and p2 = tmp_path () in
  seed p1;
  let n1 = Promote.create_leading ~readers:1 ~path:p1 ~host:"127.0.0.1" ~repl_port:0 () in
  let l1 = start_node ~path:p1 n1 in
  let n2 = mk_follower ~upstream:(Printf.sprintf "127.0.0.1:%d" (feed_port n1)) p2 in
  let l2 = start_node ~path:p2 n2 in
  let topo =
    Topo.create [ ("127.0.0.1", l1.ln_bport); ("127.0.0.1", l2.ln_bport) ]
  in
  Fun.protect
    ~finally:(fun () ->
      Topo.close topo;
      kill_node l2;
      kill_node l1;
      List.iter cleanup [ p1; p2 ])
    (fun () ->
      (match Promote.run_election topo with
      | Error e ->
          Alcotest.(check bool) "abort names the live primary" true
            (contains e "primary")
      | Ok addr ->
          Alcotest.failf "election promoted %s past a live primary" addr);
      Alcotest.(check bool) "replica stayed a replica" true (not (is_leading n2)))

(* Two routers racing the same dead-primary fleet must converge on ONE
   new primary: the deterministic rule makes both pick the same winner
   (equal LSNs -> lowest address), and the loser's promote is
   idempotent on the already-promoted node. *)
let test_concurrent_elections_one_winner () =
  let p1 = tmp_path () and p2 = tmp_path () and p3 = tmp_path () in
  seed p1;
  let n1 = Promote.create_leading ~readers:1 ~path:p1 ~host:"127.0.0.1" ~repl_port:0 () in
  let upstream = Printf.sprintf "127.0.0.1:%d" (feed_port n1) in
  let l1 = start_node ~path:p1 n1 in
  let n2 = mk_follower ~upstream p2 in
  let l2 = start_node ~path:p2 n2 in
  let n3 = mk_follower ~upstream p3 in
  let l3 = start_node ~path:p3 n3 in
  (* a couple of writes, then quiesce so both replicas sit at the same
     LSN — the tie-break case *)
  (try
     for _ = 1 to 3 do
       ignore (post l1.ln_port "/create?class=Taxon&rank=genus")
     done
   with _ -> ());
  let lead_store () =
    match n1.Promote.n_state with
    | Promote.Leading l -> Database.store l.l_db
    | _ -> assert false
  in
  let follower_lsn n =
    match n.Promote.n_state with
    | Promote.Following f -> R.Apply.last_lsn f.f_sess.R.apply
    | Promote.Leading _ -> -1
  in
  wait "replicas level" (fun () ->
      follower_lsn n2 = S.lsn (lead_store ()) && follower_lsn n3 = S.lsn (lead_store ()));
  kill_node l1;
  let replicas = [ ("127.0.0.1", l2.ln_bport); ("127.0.0.1", l3.ln_bport) ] in
  let t1 = Topo.create replicas and t2 = Topo.create replicas in
  Fun.protect
    ~finally:(fun () ->
      Topo.close t1;
      Topo.close t2;
      kill_node l3;
      kill_node l2;
      List.iter cleanup [ p1; p2; p3 ])
    (fun () ->
      let r1 = ref (Error "unset") and r2 = ref (Error "unset") in
      let th1 = Thread.create (fun () -> r1 := Promote.run_election t1) () in
      let th2 = Thread.create (fun () -> r2 := Promote.run_election t2) () in
      Thread.join th1;
      Thread.join th2;
      (* exactly one node leads, no matter how the two elections raced *)
      Alcotest.(check bool) "one and only one new primary" true
        (is_leading n2 <> is_leading n3);
      (* any successful election reported the same winner's feed *)
      (match (!r1, !r2) with
      | Ok a, Ok b ->
          Alcotest.(check string) "both elections agree on the winner" a b
      | Ok _, Error _ | Error _, Ok _ -> ()
      | Error e1, Error e2 ->
          Alcotest.failf "both elections failed: %s / %s" e1 e2);
      (* equal LSNs: the deterministic tie-break picks the LOWEST
         address, which is the lower binary port here *)
      let expect_leader = if l2.ln_bport < l3.ln_bport then n2 else n3 in
      Alcotest.(check bool) "tie-break elected the lowest address" true
        (is_leading expect_leader))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cluster"
    [
      ( "elect",
        [
          Alcotest.test_case "rule + determinism" `Quick test_elect_rule;
          Alcotest.test_case "aborts on live primary" `Quick
            test_election_aborts_on_live_primary;
          Alcotest.test_case "concurrent elections, one winner" `Slow
            test_concurrent_elections_one_winner;
        ] );
      ( "pool",
        [ Alcotest.test_case "pipelined typed requests" `Quick test_backend_pool ] );
      ( "feed",
        [
          Alcotest.test_case "stop with fetch in flight" `Quick
            test_stop_with_fetch_in_flight;
        ] );
      ( "chain",
        [ Alcotest.test_case "primary->replica->replica" `Quick test_chained_replication ]
      );
      ( "failover",
        [
          Alcotest.test_case "promotion under load" `Slow test_failover_under_load;
        ] );
    ]
