(* MVCC and group-commit test suite (PR 7).

   Covers the multicore read path end to end:

   - the frozen-LSN property: N domains reading one snapshot
     concurrently with a committing writer see results bit-identical to
     a single-threaded read taken when the snapshot was frozen;
   - database-level snapshot views: POOL queries over a shared view
     from several domains while the parent mutates;
   - group commit: concurrent committers are batched into few fsync
     cycles, every caller's data is durable once its submit returns,
     and a simulated power cut mid-batch recovers to a consistent
     prefix;
   - version-chain reclamation: a long-lived snapshot pins page
     versions, releasing it lets the watermark free them (observed via
     [Store.stats]);
   - domain-safety of the obs substrate (atomic counters, monotonic
     clock) and of per-database layer state under a 4-domain hammer. *)

open Pstore
module F = Fault
module S = Store
module D = Pmodel.Database

let value_cls = "Rec"

(* --- store-level fixtures ------------------------------------------- *)

let open_mem fs path = S.open_ ~vfs:(F.vfs fs) path

let put_records st lo hi tag =
  S.begin_tx st;
  for i = lo to hi do
    let oid = i + 10 in
    S.put st ~oid (Printf.sprintf "%s-%06d-%s" tag i (String.make (i mod 97) 'x'))
  done;
  S.commit st

let dump_snapshot (s : S.Snapshot.s) : (int * string) list =
  let acc = ref [] in
  S.Snapshot.iter s (fun oid data -> acc := (oid, data) :: !acc);
  List.rev !acc

(* --- 1. frozen-LSN bit-identical reads ------------------------------- *)

let test_frozen_lsn () =
  let fs = F.create () in
  let st = open_mem fs "mvcc1.db" in
  put_records st 0 300 "base";
  let snap = S.snapshot st in
  let frozen_lsn = S.Snapshot.lsn snap in
  (* the single-threaded reference at the frozen LSN *)
  let reference = dump_snapshot snap in
  (* 4 domains each hammer an independent clone of the snapshot while
     the writer churns the same oids through many commits *)
  let n_domains = 4 in
  let clones = List.init n_domains (fun _ -> S.Snapshot.clone snap) in
  let readers =
    List.map
      (fun clone ->
        Domain.spawn (fun () ->
            let rounds = ref 0 in
            let ok = ref true in
            while !rounds < 20 do
              if dump_snapshot clone <> reference then ok := false;
              incr rounds
            done;
            S.Snapshot.release clone;
            !ok))
      clones
  in
  (* concurrent writer: overwrite, delete, insert *)
  for round = 1 to 30 do
    S.begin_tx st;
    for i = 0 to 300 do
      if (i + round) mod 3 = 0 then
        S.put st ~oid:(i + 10) (Printf.sprintf "new-%d-%d" round i)
      else if (i + round) mod 7 = 0 then ignore (S.delete st ~oid:(i + 10))
    done;
    S.put st ~oid:(5000 + round) (String.make 512 'y');
    S.commit st
  done;
  List.iter
    (fun d -> Alcotest.(check bool) "reader saw frozen state" true (Domain.join d))
    readers;
  (* the original handle still reads the frozen state after all writes *)
  Alcotest.(check bool) "original handle frozen" true (dump_snapshot snap = reference);
  Alcotest.(check int) "lsn unchanged" frozen_lsn (S.Snapshot.lsn snap);
  S.Snapshot.release snap;
  S.close st

(* --- 2. database-level snapshot views -------------------------------- *)

let mk_db fs path =
  let db = D.open_ ~vfs:(F.vfs fs) path in
  ignore (D.define_class db value_cls [ Pmodel.Meta.attr "n" Pmodel.Value.TInt ]);
  D.create_index db value_cls "n";
  D.with_tx db (fun () ->
      for i = 0 to 199 do
        ignore (D.create db value_cls [ ("n", Pmodel.Value.VInt i) ])
      done);
  db

let count_below db k =
  match
    Pool_lang.Pool.scalar db
      (Printf.sprintf "count(select r from %s r where r.n < %d)" value_cls k)
  with
  | Pmodel.Value.VInt n -> n
  | v -> Alcotest.failf "unexpected scalar %s" (Pmodel.Value.to_string v)

let test_database_view () =
  let fs = F.create () in
  let db = mk_db fs "mvcc2.db" in
  let view = D.snapshot db in
  let expected = count_below db 100 in
  Alcotest.(check int) "view matches parent at freeze" expected (count_below view 100);
  (* shared view across 4 domains, while the parent keeps writing *)
  let readers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let ok = ref true in
            for _ = 1 to 25 do
              if count_below view 100 <> expected then ok := false
            done;
            !ok))
  in
  D.with_tx db (fun () ->
      for i = 200 to 299 do
        ignore (D.create db value_cls [ ("n", Pmodel.Value.VInt (i mod 50)) ])
      done);
  List.iter
    (fun d -> Alcotest.(check bool) "shared view stable" true (Domain.join d))
    readers;
  (* the parent sees its own writes; the view still does not *)
  Alcotest.(check bool) "parent moved on" true (count_below db 100 > expected);
  Alcotest.(check int) "view frozen" expected (count_below view 100);
  (* clones pin the same LSN *)
  let clone = D.snapshot_clone view in
  Alcotest.(check int) "clone same lsn" (D.view_lsn view) (D.view_lsn clone);
  Alcotest.(check int) "clone same answer" expected (count_below clone 100);
  D.close clone;
  (* mutators are rejected on a view *)
  (match D.create view value_cls [ ("n", Pmodel.Value.VInt 1) ] with
  | _ -> Alcotest.fail "create on view should fail"
  | exception D.Model_error _ -> ());
  (match D.begin_tx view with
  | _ -> Alcotest.fail "begin_tx on view should fail"
  | exception D.Model_error _ -> ());
  D.close view;
  D.close db

(* --- 3. group commit: batching + durability --------------------------- *)

let test_group_batching () =
  let fs = F.create () in
  let st = open_mem fs "mvcc3.db" in
  put_records st 0 10 "seed";
  let g = S.Group.start ~max_batch:32 st in
  (* prime the writer with a slow job so the K concurrent submitters
     all land in the queue and retire as one (or at most two) hard
     cycles *)
  let slow =
    Domain.spawn (fun () ->
        S.Group.submit g (fun st ->
            Unix.sleepf 0.08;
            S.put st ~oid:9000 "slow"))
  in
  Unix.sleepf 0.02 (* let the slow job enter its batch *);
  let fsyncs_before = (F.counters fs).F.fsyncs in
  let k = 8 in
  let workers =
    List.init k (fun w ->
        Domain.spawn (fun () ->
            S.Group.submit g (fun st ->
                S.put st ~oid:(9100 + w) (Printf.sprintf "worker-%d" w))))
  in
  let lsns = List.map Domain.join workers in
  let slow_lsn = Domain.join slow in
  let fsyncs_after = (F.counters fs).F.fsyncs in
  let stats = S.Group.group_stats g in
  S.Group.stop g;
  (* every committer got a real LSN *)
  List.iter (fun l -> Alcotest.(check bool) "positive lsn" true (l > 0)) (slow_lsn :: lsns);
  Alcotest.(check int) "all soft commits retired" (k + 1) stats.S.Group.commits;
  Alcotest.(check bool) "batched: fewer cycles than commits" true
    (stats.S.Group.batches >= 1 && stats.S.Group.batches <= k);
  (* fsync cycles across the K concurrent commits: >= 1 and <= K.
     (each hard cycle costs a bounded constant number of fsyncs) *)
  let cycles_cost = fsyncs_after - fsyncs_before in
  Alcotest.(check bool) "fsyncs bounded" true (cycles_cost >= 1 && cycles_cost <= 3 * k);
  (* durable: a fresh open (recovery path) sees every record *)
  S.close st;
  let st2 = open_mem fs "mvcc3.db" in
  ignore (S.check st2);
  Alcotest.(check (option string)) "slow durable" (Some "slow") (S.get st2 ~oid:9000);
  List.iteri
    (fun w _ ->
      Alcotest.(check (option string))
        "worker durable"
        (Some (Printf.sprintf "worker-%d" w))
        (S.get st2 ~oid:(9100 + w)))
    lsns;
  S.close st2

let test_group_abort_isolated () =
  (* a body that raises is rolled back without disturbing its batch *)
  let fs = F.create () in
  let st = open_mem fs "mvcc4.db" in
  let g = S.Group.start st in
  let l1 = S.Group.submit g (fun st -> S.put st ~oid:100 "one") in
  (match S.Group.submit g (fun st -> S.put st ~oid:101 "poison"; failwith "veto") with
  | _ -> Alcotest.fail "failing body must raise at the submitter"
  | exception Failure m -> Alcotest.(check string) "body error surfaced" "veto" m);
  let l2 = S.Group.submit g (fun st -> S.put st ~oid:102 "two") in
  Alcotest.(check bool) "lsns advance" true (l2 > l1);
  let stats = S.Group.group_stats g in
  Alcotest.(check int) "abort counted" 1 stats.S.Group.aborts;
  S.Group.stop g;
  S.close st;
  let st2 = open_mem fs "mvcc4.db" in
  ignore (S.check st2);
  Alcotest.(check (option string)) "first kept" (Some "one") (S.get st2 ~oid:100);
  Alcotest.(check (option string)) "poison rolled back" None (S.get st2 ~oid:101);
  Alcotest.(check (option string)) "third kept" (Some "two") (S.get st2 ~oid:102);
  S.close st2

(* --- 4. crash mid-batch recovers a consistent prefix ------------------ *)

let test_group_crash_prefix () =
  (* Sweep several crash offsets.  For each: arm a power cut, submit a
     wave of group commits, let the writer die, then reopen through
     recovery and check (a) the store is structurally sound, (b) every
     submit that returned Ok is durable, (c) each batch is all-or-
     nothing: the recovered state never holds a strict subset of one
     batch's soft commits interleaved with later ones. *)
  let offsets = [ 5; 17; 41; 97; 193 ] in
  List.iter
    (fun off ->
      let fs = F.create () in
      let st = open_mem fs "mvcc5.db" in
      put_records st 0 20 "seed";
      let g = S.Group.start ~max_batch:64 st in
      F.set_crash_at fs (F.syscalls fs + off);
      let k = 12 in
      let results = Array.make k `Pending in
      let workers =
        List.init k (fun w ->
            Domain.spawn (fun () ->
                match
                  S.Group.submit g (fun st ->
                      S.put st ~oid:(7000 + w) (Printf.sprintf "c-%d" w))
                with
                | _lsn -> results.(w) <- `Ok
                | exception _ -> results.(w) <- `Failed))
      in
      List.iter Domain.join workers;
      (match S.Group.stop g with () -> () | exception Vfs.Crash -> ());
      F.revive fs;
      (* reopen: recovery must produce a consistent store *)
      let st2 = open_mem fs "mvcc5.db" in
      ignore (S.check st2);
      Array.iteri
        (fun w r ->
          match r with
          | `Ok ->
              Alcotest.(check (option string))
                (Printf.sprintf "crash@%d: acked commit %d durable" off w)
                (Some (Printf.sprintf "c-%d" w))
                (S.get st2 ~oid:(7000 + w))
          | `Failed | `Pending -> () (* may have made it or not: crash ambiguity *))
        results;
      (* the seed data is always intact *)
      for i = 0 to 20 do
        Alcotest.(check bool)
          (Printf.sprintf "crash@%d: seed %d intact" off i)
          true
          (S.get st2 ~oid:(i + 10) <> None)
      done;
      S.close st2)
    offsets

(* --- 5. version-chain reclamation ------------------------------------- *)

let test_version_reclamation () =
  let fs = F.create () in
  let st = open_mem fs "mvcc6.db" in
  put_records st 0 50 "base";
  let before = (S.stats st).S.pinned_versions in
  Alcotest.(check int) "no pins without snapshots" 0 before;
  let snap = S.snapshot st in
  (* churn the same pages repeatedly: each commit publishes versions
     the live snapshot pins *)
  for round = 1 to 10 do
    S.begin_tx st;
    for i = 0 to 50 do
      S.put st ~oid:(i + 10) (Printf.sprintf "round-%d-%d" round i)
    done;
    S.commit st
  done;
  let pinned = (S.stats st).S.pinned_versions in
  Alcotest.(check bool) "snapshot pins versions" true (pinned > 0);
  Alcotest.(check int) "snapshot handles counted" 1 (S.stats st).S.snapshots;
  (* the snapshot still reads the original bytes through the churn *)
  (match S.Snapshot.get snap ~oid:10 with
  | Some data ->
      Alcotest.(check bool) "snapshot sees pre-churn data" true
        (String.length data >= 4 && String.sub data 0 4 = "base")
  | None -> Alcotest.fail "snapshot lost a record");
  Alcotest.(check bool) "snapshot reads counted" true ((S.stats st).S.snapshot_reads > 0);
  (* release: the next commit's watermark prune frees every chain *)
  S.Snapshot.release snap;
  S.begin_tx st;
  S.put st ~oid:10 "after-release";
  S.commit st;
  Alcotest.(check int) "watermark reclaimed all versions" 0 (S.stats st).S.pinned_versions;
  Alcotest.(check int) "no live snapshots" 0 (S.stats st).S.snapshots;
  S.close st

(* --- 6. obs substrate under domains ----------------------------------- *)

let test_obs_domain_safety () =
  let c = Pobs.Metrics.counter "test_mvcc_hammer_total" ~help:"test" in
  let n_domains = 4 and per = 25_000 in
  let workers =
    List.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              Pobs.Metrics.inc c
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check (float 0.001))
    "no lost counter increments"
    (float_of_int (n_domains * per))
    (Pobs.Metrics.counter_value c);
  (* the monotonic clock never goes backwards, on any domain *)
  let mono_ok () =
    let last = ref 0 in
    let ok = ref true in
    for _ = 1 to 10_000 do
      let t = Pobs.Monotonic.now_ns () in
      if t < !last then ok := false;
      last := t
    done;
    !ok
  in
  let ds = List.init n_domains (fun _ -> Domain.spawn mono_ok) in
  List.iter (fun d -> Alcotest.(check bool) "monotonic per domain" true (Domain.join d)) ds

(* --- 7. layer-state hammer over a shared view -------------------------- *)

let test_ext_hammer () =
  let fs = F.create () in
  let db = mk_db fs "mvcc7.db" in
  (* link some taxonomy-ish structure so CSR managers engage *)
  ignore
    (D.define_rel db "child_of" ~origin:value_cls ~destination:value_cls);
  D.with_tx db (fun () ->
      let oids = D.extent_list db value_cls in
      let arr = Array.of_list oids in
      Array.iteri
        (fun i oid -> if i > 0 then ignore (D.link db "child_of" ~origin:oid ~destination:arr.((i - 1) / 2)))
        arr);
  let view = D.snapshot db in
  let expected = count_below view 100 in
  (* 4 domains race: plan-cache misses, CSR builds, ext get-or-init *)
  let workers =
    List.init 4 (fun w ->
        Domain.spawn (fun () ->
            let ok = ref true in
            for round = 1 to 15 do
              if count_below view ((round mod 3) + 99) < 1 then ok := false;
              if count_below view 100 <> expected then ok := false;
              let m = Pgraph.Csr.handle view in
              let s = Pgraph.Csr.get m ~rel:"child_of" () in
              ignore (Pgraph.Csr.descendants s (List.nth (D.extent_list view value_cls) w))
            done;
            !ok))
  in
  List.iter
    (fun d -> Alcotest.(check bool) "hammer domain clean" true (Domain.join d))
    workers;
  (* all domains installed exactly one manager *)
  let m1 = Pgraph.Csr.handle view and m2 = Pgraph.Csr.handle view in
  Alcotest.(check bool) "one CSR manager" true (m1 == m2);
  D.close view;
  D.close db

(* ---------------------------------------------------------------------- *)

let () =
  Alcotest.run "mvcc"
    [
      ( "snapshots",
        [
          Alcotest.test_case "frozen-LSN bit-identical concurrent reads" `Quick
            test_frozen_lsn;
          Alcotest.test_case "database view across domains" `Quick test_database_view;
          Alcotest.test_case "version-chain reclamation" `Quick test_version_reclamation;
        ] );
      ( "group-commit",
        [
          Alcotest.test_case "concurrent committers batched + durable" `Quick
            test_group_batching;
          Alcotest.test_case "failing body isolated" `Quick test_group_abort_isolated;
          Alcotest.test_case "crash mid-batch recovers a prefix" `Quick
            test_group_crash_prefix;
        ] );
      ( "domains",
        [
          Alcotest.test_case "obs counters and clock" `Quick test_obs_domain_safety;
          Alcotest.test_case "layer-state hammer on shared view" `Quick test_ext_hammer;
        ] );
    ]
