(* Binary POOL protocol tests: frame codec round-trips, the
   damage matrix (every single-byte flip of an encoded frame must
   either be rejected or decode to something other than the original —
   never silently pass through), oversized-frame and truncation
   handling, and end-to-end equivalence: the same queries answered over
   the binary port and over HTTP /query must agree, one at a time and
   batched. *)

open Pmodel
module BP = Pserver.Binary_proto

let tmp_counter = ref 0

let tmp_path () =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "prom_binary_%d_%d.db" (Unix.getpid ()) !tmp_counter)

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".journal" ]

(* --- codec ------------------------------------------------------------- *)

let frame_eq (a : BP.frame) (b : BP.frame) = a = b

let sample_frames : BP.frame list =
  [
    BP.Query { id = 0; q = "select t from Taxon t" };
    BP.Query { id = max_int; q = "" };
    BP.Result { id = 42; v = "[1, 2, 3]" };
    BP.Error { id = 7; msg = "evaluation error: no such class" };
    BP.Batch [];
    BP.Batch [ (1, "select 1"); (2, "select 2"); (3, String.make 1000 'q') ];
  ]

let test_roundtrip () =
  List.iter
    (fun f ->
      let s = BP.encode f in
      match BP.parse s ~off:0 with
      | BP.Frame (f', n) ->
          Alcotest.(check bool) "frame round-trips" true (frame_eq f f');
          Alcotest.(check int) "consumes the whole encoding" (String.length s) n
      | BP.Need_more -> Alcotest.fail "complete frame parsed as incomplete"
      | BP.Bad m -> Alcotest.fail ("complete frame rejected: " ^ m))
    sample_frames

let test_incremental_parse () =
  (* every prefix of a frame is Need_more; appending a second frame
     leaves the first parseable at off 0 and the second at the cut *)
  let f1 = BP.Query { id = 1; q = "select t from Taxon t" } in
  let f2 = BP.Batch [ (2, "a"); (3, "b") ] in
  let s1 = BP.encode f1 and s2 = BP.encode f2 in
  for cut = 0 to String.length s1 - 1 do
    match BP.parse (String.sub s1 0 cut) ~off:0 with
    | BP.Need_more -> ()
    | BP.Frame _ -> Alcotest.fail "truncated frame parsed"
    | BP.Bad m -> Alcotest.fail ("truncated frame rejected instead of Need_more: " ^ m)
  done;
  let both = s1 ^ s2 in
  (match BP.parse both ~off:0 with
  | BP.Frame (f, n) ->
      Alcotest.(check bool) "first of two" true (frame_eq f f1);
      Alcotest.(check int) "first length" (String.length s1) n
  | _ -> Alcotest.fail "first frame of a pair");
  match BP.parse both ~off:(String.length s1) with
  | BP.Frame (f, _) -> Alcotest.(check bool) "second of two" true (frame_eq f f2)
  | _ -> Alcotest.fail "second frame of a pair"

(* Flip every byte of an encoded frame (all 8 bit positions would be
   slow; one flip per byte suffices to cover magic, type, length,
   payload and CRC regions).  No flip may yield the original frame
   back: either the parser rejects, or it decodes to a different frame
   (a type-byte flip can legitimately produce a valid frame of another
   type — the CRC covers the payload, as on the replication link). *)
let test_damage_matrix () =
  let f = BP.Query { id = 12345; q = "select t.rank from Taxon t" } in
  let s = BP.encode f in
  let rejected = ref 0 and mutated = ref 0 in
  for i = 0 to String.length s - 1 do
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x41));
    match BP.parse (Bytes.to_string b) ~off:0 with
    | BP.Bad _ -> incr rejected
    | BP.Need_more -> incr rejected (* length field shrank/grew: no silent accept *)
    | BP.Frame (f', _) ->
        if frame_eq f f' then
          Alcotest.fail (Printf.sprintf "flip at byte %d silently accepted" i)
        else incr mutated
  done;
  (* the CRC must catch every payload flip: only header-region flips
     (magic/type/length) may decode to a different valid frame *)
  if !mutated > BP.header_size then
    Alcotest.fail
      (Printf.sprintf "%d flips decoded as valid frames (header is only %d bytes)"
         !mutated BP.header_size);
  Alcotest.(check bool) "damage is overwhelmingly rejected" true (!rejected > 0)

let test_oversized_frame_rejected () =
  (* a header claiming a payload over the cap must be rejected from the
     header alone — before any buffering of the alleged payload *)
  let e = Pstore.Codec.Enc.create () in
  Pstore.Codec.Enc.u32 e BP.magic;
  Pstore.Codec.Enc.u8 e 1;
  Pstore.Codec.Enc.u32 e (BP.max_payload + 1);
  (match BP.parse (Pstore.Codec.Enc.to_string e) ~off:0 with
  | BP.Bad m ->
      if not (String.length m > 0) then Alcotest.fail "oversized rejection names itself"
  | _ -> Alcotest.fail "oversized length accepted");
  (* and the encoder refuses to build one *)
  match BP.encode (BP.Query { id = 1; q = String.make (BP.max_payload + 1) 'x' }) with
  | _ -> Alcotest.fail "encoder accepted an oversized payload"
  | exception BP.Malformed _ -> ()

let test_wrong_magic_rejected () =
  let s = BP.encode (BP.Query { id = 1; q = "select 1" }) in
  let b = Bytes.of_string s in
  Bytes.set b 0 'X';
  match BP.parse (Bytes.to_string b) ~off:0 with
  | BP.Bad m ->
      if not (String.length m >= 9 && String.sub m 0 9 = "bad magic") then
        Alcotest.fail ("wrong rejection: " ^ m)
  | _ -> Alcotest.fail "wrong magic accepted"

(* --- end-to-end: binary port vs HTTP ------------------------------------ *)

let with_server f =
  let path = tmp_path () in
  let db = Database.open_ path in
  Taxonomy.Tax_schema.install db;
  (* a few objects so queries have answers *)
  Database.with_tx db (fun () ->
      for i = 1 to 20 do
        ignore
          (Database.create db "Taxon"
             [ ("notes", Value.VString (Printf.sprintf "t%02d" i)); ("rank", Value.VString "species") ])
      done);
  let ports = ref (0, 0) in
  let m = Mutex.create () in
  let c = Condition.create () in
  let stop = ref false in
  let set f' =
    Mutex.lock m;
    ports := f' !ports;
    Condition.broadcast c;
    Mutex.unlock m
  in
  let th =
    Thread.create
      (fun () ->
        try
          Pserver.Http_server.serve db ~port:0 ~binary_port:0 ~stop
            ~ready:(fun p -> set (fun (_, b) -> (p, b)))
            ~binary_ready:(fun b -> set (fun (p, _) -> (p, b)))
            ()
        with e -> Printf.eprintf "server died: %s\n%!" (Printexc.to_string e))
      ()
  in
  Mutex.lock m;
  while fst !ports = 0 || snd !ports = 0 do
    Condition.wait c m
  done;
  let http_port, bin_port = !ports in
  Mutex.unlock m;
  Fun.protect
    ~finally:(fun () ->
      stop := true;
      Thread.join th;
      Database.close db;
      cleanup path)
    (fun () -> f http_port bin_port)

(* minimal HTTP GET for the equivalence check *)
let http_get port target =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\nHost: x\r\n\r\n" target in
      ignore (Unix.write fd (Bytes.unsafe_of_string req) 0 (String.length req));
      let b = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec go () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes b chunk 0 n;
            go ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
      in
      go ();
      let s = Buffer.contents b in
      let rec find i =
        if i + 4 > String.length s then String.length s
        else if String.sub s i 4 = "\r\n\r\n" then i + 4
        else find (i + 1)
      in
      let body_off = find 0 in
      String.sub s body_off (String.length s - body_off))

let url_encode s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | ('A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '-' | '_' | '.' | '~') as c ->
          Buffer.add_char b c
      | c -> Buffer.add_string b (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents b

let equiv_queries =
  [
    "select t.notes from Taxon t where t.notes = \"t05\"";
    "select t.rank from Taxon t where t.notes = \"t17\"";
    "select t from Taxon t where t.notes = \"t01\"";
  ]

let test_query_equivalence () =
  with_server (fun http_port bin_port ->
      let cl = Pserver.Client.connect ~port:bin_port () in
      Fun.protect
        ~finally:(fun () -> Pserver.Client.close cl)
        (fun () ->
          List.iter
            (fun q ->
              let http = http_get http_port ("/query?q=" ^ url_encode q) in
              match Pserver.Client.query cl q with
              | Pserver.Client.Ok v ->
                  (* HTTP appends a newline to the printed value *)
                  Alcotest.(check string) ("equivalence: " ^ q) http (v ^ "\n")
              | Pserver.Client.Err e -> Alcotest.fail ("binary error for " ^ q ^ ": " ^ e))
            equiv_queries))

let test_batch_equivalence () =
  with_server (fun http_port bin_port ->
      let cl = Pserver.Client.connect ~port:bin_port () in
      Fun.protect
        ~finally:(fun () -> Pserver.Client.close cl)
        (fun () ->
          let answers = Pserver.Client.batch cl equiv_queries in
          Alcotest.(check int) "one answer per query" (List.length equiv_queries)
            (List.length answers);
          List.iter2
            (fun q a ->
              let http = http_get http_port ("/query?q=" ^ url_encode q) in
              match a with
              | Pserver.Client.Ok v ->
                  Alcotest.(check string) ("batch equivalence: " ^ q) http (v ^ "\n")
              | Pserver.Client.Err e -> Alcotest.fail ("batch error for " ^ q ^ ": " ^ e))
            equiv_queries answers))

let test_error_equivalence () =
  with_server (fun _http_port bin_port ->
      let cl = Pserver.Client.connect ~port:bin_port () in
      Fun.protect
        ~finally:(fun () -> Pserver.Client.close cl)
        (fun () ->
          match Pserver.Client.query cl "select $$garbage" with
          | Pserver.Client.Ok v -> Alcotest.fail ("garbage query succeeded: " ^ v)
          | Pserver.Client.Err e ->
              if not (String.length e >= 12 && String.sub e 0 12 = "syntax error") then
                Alcotest.fail ("unexpected error text: " ^ e)))

let test_server_rejects_damage () =
  with_server (fun _http_port bin_port ->
      (* a corrupt frame gets an Error answer and a closed connection;
         the server survives and keeps serving *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, bin_port));
      let s = BP.encode (BP.Query { id = 9; q = "select 1" }) in
      let b = Bytes.of_string s in
      let mid = BP.header_size + 2 in
      Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0xff));
      ignore (Unix.write fd b 0 (Bytes.length b));
      (* read everything the server sends before closing *)
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
      in
      drain ();
      Unix.close fd;
      (match BP.parse (Buffer.contents buf) ~off:0 with
      | BP.Frame (BP.Error _, _) -> ()
      | _ -> Alcotest.fail "damage not answered with an Error frame");
      (* the listener is still alive for a clean client *)
      let cl = Pserver.Client.connect ~port:bin_port () in
      Fun.protect
        ~finally:(fun () -> Pserver.Client.close cl)
        (fun () ->
          match Pserver.Client.query cl "select t.notes from Taxon t where t.notes = \"t03\"" with
          | Pserver.Client.Ok _ -> ()
          | Pserver.Client.Err e -> Alcotest.fail ("clean query after damage: " ^ e)))

let () =
  Alcotest.run "binary"
    [
      ( "codec",
        [
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "incremental parse" `Quick test_incremental_parse;
          Alcotest.test_case "damage matrix" `Quick test_damage_matrix;
          Alcotest.test_case "oversized frame rejected" `Quick test_oversized_frame_rejected;
          Alcotest.test_case "wrong magic rejected" `Quick test_wrong_magic_rejected;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "query equivalence vs HTTP" `Quick test_query_equivalence;
          Alcotest.test_case "batch equivalence vs HTTP" `Quick test_batch_equivalence;
          Alcotest.test_case "error equivalence" `Quick test_error_equivalence;
          Alcotest.test_case "server rejects damage" `Quick test_server_rejects_damage;
        ] );
    ]
