(* End-to-end page-integrity torture tests (the bit-rot analogue of
   test_crash's power-cut sweep).

   Layers, bottom up:

   - crc: the boxed legacy CRC-32 and the slicing-by-4 implementation
     are bit-identical (the legacy path stays a pure ablation switch).
   - recovery: a torn/corrupt journal tail is counted and logged, not
     silently swallowed.
   - rot (the tentpole sweep): a populated store on the fault VFS gets
     one bit flipped in *every* page, one page at a time; each flip
     must be detected as a typed [Page_corrupt] naming that page — 100%
     detection, zero tolerance — and healing the bit must verify clean.
   - quarantine/scrub: quarantined pages read without raising and are
     skipped by scrub; scrub reports the exact corrupt set without
     polluting the page cache.
   - cli: `pdb verify` exits 0 on a clean store and 1 with a per-page
     report on a rotted one.
   - repair: a live primary/replica pair over loopback; bits flipped in
     the replica file at rest are healed from the primary's mirror
     ([scrub_repair] and the `pdb scrub --from` CLI), ending
     byte-identical; header-page damage degrades to a full
     re-bootstrap.

   Environment knobs:
     SCRUB_TORTURE=long  bigger store, denser sweep (CI nightly)
     SCRUB_SEED=<int>    fault-VFS seed (default 0x5C12) *)

open Pstore
module F = Fault
module V = Vfs
module P = Pager
module S = Store
module Feed = Prepl.Feed
module R = Prepl.Replica

let long_mode =
  match Sys.getenv_opt "SCRUB_TORTURE" with Some "long" -> true | _ -> false

let seed =
  match Sys.getenv_opt "SCRUB_SEED" with
  | Some s -> int_of_string s
  | None -> 0x5C12

let cval (c : Pobs.Metrics.counter) = int_of_float (Pobs.Metrics.counter_value c)
let page_of c = String.make P.page_size c

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

(* A store with a spread of record sizes: small inline records, records
   near the inline threshold, and multi-page overflow blobs. *)
let populate ~txs (vfs : V.t) path : S.t =
  let s = S.open_ ~vfs path in
  for i = 1 to txs do
    S.with_tx s (fun () ->
        S.put s ~oid:i
          (String.make (200 + (i * 937 mod 5200)) (Char.chr (65 + (i mod 26)))))
  done;
  s

let write_file (vfs : V.t) path (chunks : string list) =
  let fd = vfs.V.open_file ~trunc:true path in
  let off = ref 0 in
  List.iter
    (fun s ->
      let b = Bytes.of_string s in
      let n = fd.V.pwrite ~buf:b ~off:0 ~len:(Bytes.length b) ~at:!off in
      assert (n = Bytes.length b);
      off := !off + n)
    chunks;
  fd.V.fsync ();
  fd.V.close ()

(* A journal frame, as journal_append writes it. *)
let frame page_no (data : string) =
  assert (String.length data = P.page_size);
  let e = Codec.Enc.create ~size:(16 + P.page_size) () in
  Codec.Enc.u32 e 0x4A524E4C;
  Codec.Enc.i64 e (Int64.of_int page_no);
  Codec.Enc.u32 e (Int32.to_int (Codec.Crc32.digest data) land 0xffffffff);
  Codec.Enc.raw e data;
  Codec.Enc.to_string e

(* Fabricated raw images carry no checksum trailers. *)
let nock = { P.default_config with P.checksums = false }

(* XOR one bit of a real on-disk file (the unix-VFS rot injector). *)
let patch_byte path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let b = Bytes.create 1 in
      if Unix.read fd b 0 1 <> 1 then Alcotest.failf "patch_byte: short read at %d" off;
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x40));
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      if Unix.write fd b 0 1 <> 1 then Alcotest.failf "patch_byte: short write at %d" off)

let read_disk path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let wait ?(timeout = 20.) msg cond =
  let deadline = Unix.gettimeofday () +. timeout in
  while (not (cond ())) && Unix.gettimeofday () < deadline do
    Thread.delay 0.02
  done;
  if not (cond ()) then Alcotest.failf "timeout waiting for %s" msg

(* ------------------------------------------------------------------ *)
(* CRC equivalence (satellite: one CRC-32, boxed variant = ablation)   *)
(* ------------------------------------------------------------------ *)

let test_crc_equivalence () =
  let rng = Random.State.make [| seed; 0xC2C |] in
  for _ = 1 to 300 do
    let len = Random.State.int rng 6000 in
    let b = Bytes.init len (fun _ -> Char.chr (Random.State.int rng 256)) in
    Alcotest.(check int32) "boxed CRC = slicing-by-4 CRC"
      (Codec.Crc32.digest_bytes_boxed b)
      (Codec.Crc32.digest_bytes b)
  done;
  Alcotest.(check int32) "empty input" (Codec.Crc32.digest_bytes_boxed Bytes.empty)
    (Codec.Crc32.digest_bytes Bytes.empty)

(* ------------------------------------------------------------------ *)
(* Torn journal tail is counted, not swallowed (satellite)             *)
(* ------------------------------------------------------------------ *)

let test_torn_tail_counter () =
  let fs = F.create ~seed:3 () in
  F.set_short_transfers fs false;
  let vfs = F.vfs fs in
  write_file vfs "t.db" [ page_of 'H'; page_of 'B' ];
  write_file vfs "t.db.journal"
    [ frame 1 (page_of 'A'); String.sub (frame 0 (page_of 'Z')) 0 14 ];
  let before = cval P.m_torn_tail in
  let p = P.open_file ~config:nock ~vfs "t.db" in
  P.close p;
  Alcotest.(check int) "torn-tail counter fired once" (before + 1)
    (cval P.m_torn_tail);
  (* a journal of only complete, valid frames must not fire it *)
  write_file vfs "t.db.journal" [ frame 1 (page_of 'A') ];
  let p = P.open_file ~config:nock ~vfs "t.db" in
  P.close p;
  Alcotest.(check int) "clean journal does not fire" (before + 1)
    (cval P.m_torn_tail)

(* ------------------------------------------------------------------ *)
(* The bit-rot sweep (tentpole): every page, 100% detection            *)
(* ------------------------------------------------------------------ *)

let test_bitrot_sweep () =
  let txs = if long_mode then 150 else 30 in
  let fs = F.create ~seed () in
  let vfs = F.vfs fs in
  let s = populate ~txs vfs "rot.db" in
  S.close s;
  let pages =
    match F.file_size fs "rot.db" with
    | Some n -> n / P.page_size
    | None -> Alcotest.fail "store file missing"
  in
  Alcotest.(check bool) "sweep covers a real store" true (pages >= 10);
  let before = cval P.m_page_corrupt in
  let detected = ref 0 in
  for no = 0 to pages - 1 do
    (* one deterministic bit per page, drifting across offsets and bit
       positions so trailer bytes and the header flag get hit too *)
    let off = (no * P.page_size) + (no * 131 mod P.page_size)
    and bit = no mod 8 in
    F.flip_bit fs "rot.db" ~off ~bit;
    (match P.open_file ~vfs "rot.db" with
    | exception P.Page_corrupt { page; _ } ->
        (* header damage surfaces at open, before anything is trusted *)
        if no <> 0 then
          Alcotest.failf "rot in page %d misreported as page %d at open" no page;
        incr detected
    | p ->
        Fun.protect
          ~finally:(fun () -> P.close p)
          (fun () ->
            match P.read p no with
            | _ -> Alcotest.failf "page %d: flipped bit went undetected" no
            | exception P.Page_corrupt { page; expected; got } ->
                Alcotest.(check int) "the damaged page is blamed" no page;
                Alcotest.(check bool) "crc pair differs" true (expected <> got);
                incr detected));
    (* heal the bit: the page must verify clean again *)
    F.flip_bit fs "rot.db" ~off ~bit
  done;
  Alcotest.(check int) "100% detection across the sweep" pages !detected;
  Alcotest.(check bool) "detection counter advanced" true
    (cval P.m_page_corrupt >= before + pages);
  let p = P.open_file ~vfs "rot.db" in
  let r = P.scrub p in
  Alcotest.(check int) "healed store scrubs clean" 0
    (List.length r.P.scrub_corrupt);
  Alcotest.(check int) "every page scanned" pages r.P.scrub_scanned;
  P.close p

(* ------------------------------------------------------------------ *)
(* Quarantine semantics                                                *)
(* ------------------------------------------------------------------ *)

let test_quarantine () =
  let fs = F.create ~seed:(seed + 1) () in
  let vfs = F.vfs fs in
  let s = populate ~txs:12 vfs "q.db" in
  S.close s;
  let target = 2 in
  F.flip_bit fs "q.db" ~off:((target * P.page_size) + 77) ~bit:3;
  let p = P.open_file ~vfs "q.db" in
  Fun.protect
    ~finally:(fun () -> P.close p)
    (fun () ->
      (match P.read p target with
      | _ -> Alcotest.fail "corrupt page read did not raise"
      | exception P.Page_corrupt _ -> ());
      P.quarantine p target;
      (* quarantined: the damaged bytes are readable for repair *)
      ignore (P.read p target);
      Alcotest.(check (list int)) "quarantine listed" [ target ] (P.quarantined p);
      let r = P.scrub p in
      Alcotest.(check bool) "scrub skips the quarantined page" true
        (r.P.scrub_skipped >= 1);
      Alcotest.(check int) "scrub reports nothing else" 0
        (List.length r.P.scrub_corrupt);
      (* the damage is still there underneath *)
      (match P.verify_page p target with
      | _ -> Alcotest.fail "verify_page missed the damage"
      | exception P.Page_corrupt _ -> ());
      P.unquarantine p target;
      Alcotest.(check (list int)) "quarantine lifted" [] (P.quarantined p))

(* ------------------------------------------------------------------ *)
(* Scrub: exact report, no cache pollution                             *)
(* ------------------------------------------------------------------ *)

let test_scrub_report () =
  let fs = F.create ~seed:(seed + 2) () in
  let vfs = F.vfs fs in
  let s = populate ~txs:25 vfs "s.db" in
  (* a live, just-committed store scrubs clean through the Store API *)
  let r = S.scrub s in
  Alcotest.(check int) "live store clean" 0 (List.length r.P.scrub_corrupt);
  Alcotest.(check bool) "live store scanned" true (r.P.scrub_scanned > 0);
  S.close s;
  let pages =
    match F.file_size fs "s.db" with Some n -> n / P.page_size | None -> 0
  in
  let bad = List.sort_uniq compare [ 3; 5; pages - 1 ] in
  List.iter
    (fun no -> F.flip_bit fs "s.db" ~off:((no * P.page_size) + 501) ~bit:6)
    bad;
  let p = P.open_file ~vfs "s.db" in
  Fun.protect
    ~finally:(fun () -> P.close p)
    (fun () ->
      let r = P.scrub p in
      Alcotest.(check (list int)) "exact corrupt set, ascending" bad
        (List.map (fun (no, _, _) -> no) r.P.scrub_corrupt);
      List.iter
        (fun (_, expected, got) ->
          Alcotest.(check bool) "report carries both crcs" true (expected <> got))
        r.P.scrub_corrupt;
      (* scrubbing must not pull scanned pages into the LRU *)
      List.iter
        (fun no ->
          Alcotest.(check bool)
            (Printf.sprintf "page %d not cached by scrub" no)
            false (P.cached p no))
        bad)

(* ------------------------------------------------------------------ *)
(* CLI: pdb verify (satellite)                                         *)
(* ------------------------------------------------------------------ *)

let tmp_base =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "prom_integ_%d" (Unix.getpid ()))

let cleanup () =
  List.iter
    (fun suffix ->
      let p = tmp_base ^ suffix in
      if Sys.file_exists p then Sys.remove p)
    [
      "_v.db"; "_v.db.journal"; "_v.out";
      "_p.db"; "_p.db.journal";
      "_r.db"; "_r.db.journal"; "_r.db.replid"; "_r.db.replid.tmp"; "_r.db.snap";
      "_c.out";
    ]

(* Under `dune runtest` the cwd is _build/default/test; under a bare
   `dune exec` it is the workspace root.  Find the binary either way. *)
let pdb =
  let candidates =
    [
      Filename.concat ".." "bin/pdb.exe";
      Filename.concat "_build/default" "bin/pdb.exe";
      Filename.concat "bin" "pdb.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let run_cli args ~out =
  Sys.command
    (Printf.sprintf "%s %s > %s 2>&1" pdb
       (String.concat " " (List.map Filename.quote args))
       (Filename.quote out))

let test_cli_verify () =
  cleanup ();
  let path = tmp_base ^ "_v.db" and out = tmp_base ^ "_v.out" in
  let s = S.open_ path in
  for i = 1 to 12 do
    S.with_tx s (fun () -> S.put s ~oid:i (String.make 900 'v'))
  done;
  S.close s;
  Fun.protect ~finally:cleanup (fun () ->
      Alcotest.(check int) "verify exits 0 on a clean store" 0
        (run_cli [ "verify"; path ] ~out);
      patch_byte path ((2 * P.page_size) + 1234);
      Alcotest.(check int) "verify exits 1 on a rotted store" 1
        (run_cli [ "verify"; path ] ~out);
      let text = read_disk out in
      Alcotest.(check bool) "per-page report names the page" true
        (contains text "page      2 CORRUPT");
      (* healing the bit restores a clean verdict *)
      patch_byte path ((2 * P.page_size) + 1234);
      Alcotest.(check int) "verify exits 0 after heal" 0
        (run_cli [ "verify"; path ] ~out))

(* ------------------------------------------------------------------ *)
(* Peer repair end-to-end (tentpole)                                   *)
(* ------------------------------------------------------------------ *)

let test_peer_repair () =
  cleanup ();
  let ppath = tmp_base ^ "_p.db" and rpath = tmp_base ^ "_r.db" in
  let s = S.open_ ppath in
  let feed = Feed.create s in
  for i = 1 to 24 do
    S.with_tx s (fun () -> S.put s ~oid:i (String.make (500 + (i * 97)) 'p'))
  done;
  let srv = Feed.serve feed ~port:0 in
  Fun.protect
    ~finally:(fun () ->
      (try Feed.stop_server srv with _ -> ());
      Feed.detach feed;
      S.close s;
      cleanup ())
    (fun () ->
      (* bootstrap a replica, then stop the session so the file is at
         rest — rot strikes cold files, not live ones *)
      let sess = R.start ~host:"127.0.0.1" ~port:srv.Feed.port rpath in
      (try wait "replica bootstrap" (fun () -> R.Apply.last_lsn sess.R.apply = S.lsn s)
       with e ->
         R.stop sess;
         raise e);
      R.stop sess;
      Alcotest.(check bool) "replica byte-identical before rot" true
        (read_disk ppath = read_disk rpath);
      let npages = String.length (read_disk rpath) / P.page_size in
      Alcotest.(check bool) "replica big enough to rot" true (npages > 5);

      (* 1. at-rest rot in two data pages: healed in place from the peer *)
      patch_byte rpath ((2 * P.page_size) + 1000);
      patch_byte rpath ((4 * P.page_size) + 2000);
      (match R.scrub_repair ~host:"127.0.0.1" ~port:srv.Feed.port rpath with
      | `Repaired pages ->
          Alcotest.(check (list int)) "both pages repaired" [ 2; 4 ] pages
      | `Clean _ -> Alcotest.fail "rot not detected"
      | `Rebootstrapped _ -> Alcotest.fail "repairable rot re-bootstrapped");
      Alcotest.(check bool) "byte-identical after peer repair" true
        (read_disk ppath = read_disk rpath);

      (* 2. the same heal through the CLI verb *)
      patch_byte rpath ((3 * P.page_size) + 123);
      let out = tmp_base ^ "_c.out" in
      let code =
        run_cli
          [ "scrub"; rpath; "--from";
            Printf.sprintf "127.0.0.1:%d" srv.Feed.port ]
          ~out
      in
      Alcotest.(check int) "pdb scrub --from exits 0" 0 code;
      Alcotest.(check bool) "CLI reports the repair" true
        (contains (read_disk out) "repaired 1 corrupt page");
      Alcotest.(check bool) "byte-identical after CLI repair" true
        (read_disk ppath = read_disk rpath);

      (* 3. a clean replica is left alone *)
      (match R.scrub_repair ~host:"127.0.0.1" ~port:srv.Feed.port rpath with
      | `Clean n -> Alcotest.(check int) "every page scanned" npages n
      | _ -> Alcotest.fail "clean file not reported clean");

      (* 4. header-page damage is unrepairable: degrade to re-bootstrap *)
      patch_byte rpath 10;
      (match R.scrub_repair ~host:"127.0.0.1" ~port:srv.Feed.port rpath with
      | `Rebootstrapped lsn ->
          Alcotest.(check int) "snapshot at the primary's lsn" (S.lsn s) lsn
      | `Repaired _ -> Alcotest.fail "header page claimed repaired in place"
      | `Clean _ -> Alcotest.fail "header rot not detected");
      Alcotest.(check bool) "byte-identical after re-bootstrap" true
        (read_disk ppath = read_disk rpath);
      Alcotest.(check bool) "repair metrics exposed" true
        (contains (Pobs.Metrics.expose ()) "pdb_repl_page_repairs_total"))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "integrity"
    [
      ( "crc",
        [ Alcotest.test_case "boxed and fast CRC-32 agree" `Quick test_crc_equivalence ] );
      ( "recovery",
        [ Alcotest.test_case "torn journal tail counted" `Quick test_torn_tail_counter ] );
      ( "rot",
        [
          Alcotest.test_case "bit-rot sweep: every page detected" `Quick
            test_bitrot_sweep;
          Alcotest.test_case "quarantine semantics" `Quick test_quarantine;
          Alcotest.test_case "scrub report and cache hygiene" `Quick
            test_scrub_report;
        ] );
      ( "cli",
        [ Alcotest.test_case "pdb verify exit codes" `Quick test_cli_verify ] );
      ( "repair",
        [
          Alcotest.test_case "peer repair end-to-end" `Quick test_peer_repair;
        ] );
    ]
