(* Property-based tests over the core data structures and invariants:
   value serialisation, value ordering, schema round-trips, graph
   dualities, derivation determinism, synonymy symmetry, and POOL
   algebraic laws. *)

open Pmodel
module V = Value
module OidSet = Database.OidSet

let tmp_counter = ref 0

let tmp_path () =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "prom_prop_%d_%d.db" (Unix.getpid ()) !tmp_counter)

let cleanup path =
  if Sys.file_exists path then Sys.remove path;
  if Sys.file_exists (path ^ ".journal") then Sys.remove (path ^ ".journal")

let with_db f =
  let path = tmp_path () in
  let db = Database.open_ path in
  Fun.protect
    ~finally:(fun () ->
      (try Database.close db with _ -> ());
      cleanup path)
    (fun () -> f db)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let value_gen : V.t QCheck.Gen.t =
  let open QCheck.Gen in
  sized (fun size ->
      fix
        (fun self size ->
          let scalar =
            oneof
              [
                return V.VNull;
                map (fun i -> V.VInt i) small_signed_int;
                map (fun f -> V.VFloat f) (float_bound_inclusive 1000.);
                map (fun s -> V.VString s) (string_size (int_bound 12));
                map (fun b -> V.VBool b) bool;
                map3 (fun y m d -> V.VDate (V.date ~month:(1 + m) ~day:(1 + d) y))
                  (int_range 1700 2100) (int_bound 11) (int_bound 27);
                map (fun o -> V.VRef (1 + o)) (int_bound 10000);
              ]
          in
          if size <= 1 then scalar
          else
            frequency
              [
                (4, scalar);
                (1, map (fun l -> V.VList l) (list_size (int_bound 4) (self (size / 2))));
                (1, map V.vset (list_size (int_bound 4) (self (size / 2))));
                (1, map V.vbag (list_size (int_bound 4) (self (size / 2))));
              ])
        (min size 12))

let value_arb = QCheck.make ~print:V.to_string value_gen

let ty_gen : V.ty QCheck.Gen.t =
  let open QCheck.Gen in
  sized
    (fix (fun self size ->
         let base =
           oneofl [ V.TInt; V.TFloat; V.TString; V.TBool; V.TDate; V.TRef "Object"; V.TAny ]
         in
         if size <= 1 then base
         else
           frequency
             [
               (4, base);
               (1, map (fun t -> V.TList t) (self (size / 2)));
               (1, map (fun t -> V.TSet t) (self (size / 2)));
               (1, map (fun t -> V.TBag t) (self (size / 2)));
             ]))

(* ------------------------------------------------------------------ *)
(* Value properties                                                    *)
(* ------------------------------------------------------------------ *)

let prop_value_roundtrip =
  QCheck.Test.make ~name:"value encode/decode roundtrip" ~count:500 value_arb (fun v ->
      let e = Pstore.Codec.Enc.create () in
      V.encode e v;
      let d = Pstore.Codec.Dec.of_string (Pstore.Codec.Enc.to_string e) in
      V.equal_value v (V.decode d))

let prop_ty_roundtrip =
  QCheck.Test.make ~name:"type encode/decode roundtrip" ~count:300 (QCheck.make ty_gen)
    (fun t ->
      let e = Pstore.Codec.Enc.create () in
      V.encode_ty e t;
      let d = Pstore.Codec.Dec.of_string (Pstore.Codec.Enc.to_string e) in
      V.decode_ty d = t)

let prop_compare_reflexive =
  QCheck.Test.make ~name:"compare_value reflexive" ~count:300 value_arb (fun v ->
      V.compare_value v v = 0)

let prop_compare_antisymmetric =
  QCheck.Test.make ~name:"compare_value antisymmetric" ~count:300 (QCheck.pair value_arb value_arb)
    (fun (a, b) ->
      let ab = V.compare_value a b and ba = V.compare_value b a in
      (ab = 0 && ba = 0) || (ab > 0 && ba < 0) || (ab < 0 && ba > 0))

let prop_compare_transitive =
  QCheck.Test.make ~name:"compare_value transitive (sampled)" ~count:300
    (QCheck.triple value_arb value_arb value_arb) (fun (a, b, c) ->
      let sorted = List.sort V.compare_value [ a; b; c ] in
      match sorted with
      | [ x; y; z ] -> V.compare_value x y <= 0 && V.compare_value y z <= 0 && V.compare_value x z <= 0
      | _ -> false)

let prop_vset_idempotent =
  QCheck.Test.make ~name:"vset is sorted, unique, idempotent" ~count:300
    (QCheck.list_of_size QCheck.Gen.(int_bound 8) value_arb) (fun l ->
      match V.vset l with
      | V.VSet items ->
          let again = match V.vset items with V.VSet i -> i | _ -> [] in
          let sorted = List.sort_uniq V.compare_value l in
          List.length items = List.length sorted && again = items
      | _ -> false)

let prop_obj_roundtrip =
  QCheck.Test.make ~name:"object encode/decode roundtrip" ~count:300
    (QCheck.list_of_size
       QCheck.Gen.(int_bound 6)
       (QCheck.pair (QCheck.make QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 8))) value_arb))
    (fun attrs ->
      let o = Obj.make ~oid:42 ~class_name:"Probe" attrs in
      let o' = Obj.decode ~oid:42 (Obj.encode o) in
      o'.Obj.class_name = "Probe"
      && List.for_all (fun (k, _) -> V.equal_value (Obj.get o k) (Obj.get o' k)) attrs)

(* ------------------------------------------------------------------ *)
(* Schema round-trip                                                   *)
(* ------------------------------------------------------------------ *)

let prop_schema_roundtrip =
  QCheck.Test.make ~name:"schema encode/decode roundtrip" ~count:50
    QCheck.(pair (int_range 1 6) (int_range 0 4))
    (fun (nclasses, nrels) ->
      let s = Meta.empty () in
      for i = 1 to nclasses do
        let supers = if i > 1 && i mod 2 = 0 then [ Printf.sprintf "C%d" (i - 1) ] else [] in
        ignore
          (Meta.define_class s ~supers (Printf.sprintf "C%d" i)
             [ Meta.attr "a" V.TInt; Meta.attr "b" (V.TSet (V.TRef "Object")) ])
      done;
      for i = 1 to min nrels nclasses do
        ignore
          (Meta.define_rel s (Printf.sprintf "R%d" i) ~origin:(Printf.sprintf "C%d" i)
             ~destination:"C1" ~kind:Meta.Aggregation ~exclusive:(i mod 2 = 0)
             ~attrs:[ Meta.attr "w" V.TInt ])
      done;
      let s2 = Meta.empty () in
      Meta.decode_into s2 (Meta.encode s);
      List.for_all
        (fun (c : Meta.class_def) -> Meta.find_class s2 c.Meta.class_name = Some c)
        (Meta.classes s)
      && List.for_all (fun (r : Meta.rel_def) -> Meta.find_rel s2 r.Meta.rel_name = Some r)
           (Meta.rels s))

(* ------------------------------------------------------------------ *)
(* Graph properties on random DAGs                                     *)
(* ------------------------------------------------------------------ *)

(* build a random DAG over n nodes: edges only i -> j with i < j *)
let build_dag db n (edges : (int * int) list) =
  ignore (Database.define_class db "GNode" [ Meta.attr "i" V.TInt ]);
  ignore (Database.define_rel db "GEdge" ~origin:"GNode" ~destination:"GNode");
  let nodes = Array.init n (fun i -> Database.create db "GNode" [ ("i", V.VInt i) ]) in
  List.iter
    (fun (i, j) ->
      if i <> j then
        let i, j = if i < j then (i, j) else (j, i) in
        if
          not
            (List.exists
               (fun (r : Obj.t) -> Obj.destination r = nodes.(j))
               (Database.outgoing db ~rel_name:"GEdge" nodes.(i)))
        then ignore (Database.link db "GEdge" ~origin:nodes.(i) ~destination:nodes.(j)))
    edges;
  nodes

let dag_gen =
  QCheck.make
    ~print:(fun (n, es) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) es)))
    QCheck.Gen.(
      int_range 2 10 >>= fun n ->
      list_size (int_bound 20) (pair (int_bound (n - 1)) (int_bound (n - 1))) >>= fun es ->
      return (n, es))

let prop_closure_is_descendants_plus_root =
  QCheck.Test.make ~name:"closure = descendants + root" ~count:60 dag_gen (fun (n, es) ->
      with_db (fun db ->
          let nodes = build_dag db n es in
          Array.for_all
            (fun v ->
              let c = Pgraph.Traverse.closure db ~rel:"GEdge" v in
              let d = Pgraph.Traverse.descendants db ~rel:"GEdge" v in
              OidSet.equal c (OidSet.add v d))
            nodes))

let prop_ancestors_descendants_dual =
  QCheck.Test.make ~name:"u in descendants(v) iff v in ancestors(u)" ~count:60 dag_gen
    (fun (n, es) ->
      with_db (fun db ->
          let nodes = build_dag db n es in
          Array.for_all
            (fun v ->
              OidSet.for_all
                (fun u -> OidSet.mem v (Pgraph.Traverse.ancestors db ~rel:"GEdge" u))
                (Pgraph.Traverse.descendants db ~rel:"GEdge" v))
            nodes))

let prop_dag_has_no_cycle =
  QCheck.Test.make ~name:"generated DAGs are acyclic; adding a back edge creates a cycle"
    ~count:60 dag_gen (fun (n, es) ->
      with_db (fun db ->
          let nodes = build_dag db n es in
          let universe = Array.fold_left (fun s v -> OidSet.add v s) OidSet.empty nodes in
          let acyclic = not (Pgraph.Traverse.has_cycle db ~rel:"GEdge" universe) in
          (* force a cycle when at least one edge exists *)
          let with_back_edge =
            match
              Array.to_list nodes
              |> List.concat_map (fun v -> Database.outgoing db ~rel_name:"GEdge" v)
            with
            | [] -> true (* no edges: nothing to test *)
            | r :: _ ->
                ignore
                  (Database.link db "GEdge" ~origin:(Obj.destination r) ~destination:(Obj.origin r));
                Pgraph.Traverse.has_cycle db ~rel:"GEdge" universe
          in
          acyclic && with_back_edge))

let prop_path_endpoints =
  QCheck.Test.make ~name:"shortest_path endpoints and adjacency" ~count:60 dag_gen
    (fun (n, es) ->
      with_db (fun db ->
          let nodes = build_dag db n es in
          Array.for_all
            (fun src ->
              Array.for_all
                (fun dst ->
                  match Pgraph.Traverse.shortest_path db ~rel:"GEdge" src dst with
                  | None -> not (Pgraph.Traverse.reachable db ~rel:"GEdge" src dst) || src = dst
                  | Some p ->
                      List.hd p = src
                      && List.nth p (List.length p - 1) = dst
                      && (* consecutive nodes are connected *)
                      let rec adj = function
                        | a :: (b :: _ as rest) ->
                            List.exists
                              (fun (r : Obj.t) -> Obj.destination r = b)
                              (Database.outgoing db ~rel_name:"GEdge" a)
                            && adj rest
                        | _ -> true
                      in
                      adj p)
                nodes)
            nodes))

(* ------------------------------------------------------------------ *)
(* Taxonomy properties                                                 *)
(* ------------------------------------------------------------------ *)

let prop_derivation_deterministic =
  QCheck.Test.make ~name:"derivation is deterministic and total" ~count:10
    QCheck.(int_range 1 1000)
    (fun seed ->
      with_db (fun db ->
          Taxonomy.Tax_schema.install db;
          let params =
            { Taxonomy.Flora_gen.families = 1; genera_per_family = 2; species_per_genus = 3; specimens_per_species = 2; seed }
          in
          let flora = Taxonomy.Flora_gen.generate db ~params () in
          let root = List.hd flora.Taxonomy.Flora_gen.root_taxa in
          let ctx = flora.Taxonomy.Flora_gen.ctx in
          let a1 = Taxonomy.Derivation.derive db ~ctx ~root () in
          let names1 =
            List.map
              (fun a -> (a.Taxonomy.Derivation.taxon, Taxonomy.Derivation.name_of_outcome a.Taxonomy.Derivation.outcome))
              a1
          in
          (* every taxon in the classification got a name *)
          let n_taxa = 1 + 2 + 6 in
          List.length a1 = n_taxa
          && (* re-deriving assigns the same names for taxa that had
                Existing outcomes (new combinations are reused the second
                time: the names now exist) *)
          List.for_all
            (fun (t, n) ->
              match Taxonomy.Classify.calculated_name db t with
              | Some n' -> n' = n
              | None -> false)
            names1))

let prop_synonymy_symmetric =
  QCheck.Test.make ~name:"specimen-based synonymy is symmetric" ~count:8
    QCheck.(int_range 1 1000)
    (fun seed ->
      with_db (fun db ->
          Taxonomy.Tax_schema.install db;
          let params =
            { Taxonomy.Flora_gen.families = 1; genera_per_family = 2; species_per_genus = 3; specimens_per_species = 2; seed }
          in
          let flora = Taxonomy.Flora_gen.generate db ~params () in
          let ctx2 = Taxonomy.Flora_gen.perturb db flora ~fraction:0.5 () in
          let ctx1 = flora.Taxonomy.Flora_gen.ctx in
          let ab = Taxonomy.Synonymy.find db ~ctx_a:ctx1 ~ctx_b:ctx2 in
          let ba = Taxonomy.Synonymy.find db ~ctx_a:ctx2 ~ctx_b:ctx1 in
          let key s = (s.Taxonomy.Synonymy.taxon_a, s.Taxonomy.Synonymy.taxon_b, s.Taxonomy.Synonymy.extent = Taxonomy.Synonymy.Full) in
          let flip s = (s.Taxonomy.Synonymy.taxon_b, s.Taxonomy.Synonymy.taxon_a, s.Taxonomy.Synonymy.extent = Taxonomy.Synonymy.Full) in
          List.sort compare (List.map key ab) = List.sort compare (List.map flip ba)))

let prop_compare_copy_is_identity =
  QCheck.Test.make ~name:"a fresh revision copy agrees 100% with its source" ~count:8
    QCheck.(int_range 1 1000)
    (fun seed ->
      with_db (fun db ->
          Taxonomy.Tax_schema.install db;
          let params =
            { Taxonomy.Flora_gen.families = 1; genera_per_family = 2; species_per_genus = 2; specimens_per_species = 2; seed }
          in
          let flora = Taxonomy.Flora_gen.generate db ~params () in
          let ctx1 = flora.Taxonomy.Flora_gen.ctx in
          let ctx2 = Taxonomy.Classify.start_revision db ~from_ctx:ctx1 "copy" in
          let r =
            Pgraph.Compare.compare_contexts db ~rel:Taxonomy.Tax_schema.circumscribes
              ~ctx_a:ctx1 ~ctx_b:ctx2 ()
          in
          r.Pgraph.Compare.agreement = 1.0
          && r.Pgraph.Compare.moved = []
          && OidSet.is_empty r.Pgraph.Compare.only_in_a
          && OidSet.is_empty r.Pgraph.Compare.only_in_b))

let prop_revision_copy_preserves_specimen_sets =
  QCheck.Test.make ~name:"starting a revision preserves every circumscription" ~count:8
    QCheck.(int_range 1 1000)
    (fun seed ->
      with_db (fun db ->
          Taxonomy.Tax_schema.install db;
          let params =
            { Taxonomy.Flora_gen.families = 1; genera_per_family = 2; species_per_genus = 2; specimens_per_species = 2; seed }
          in
          let flora = Taxonomy.Flora_gen.generate db ~params () in
          let ctx1 = flora.Taxonomy.Flora_gen.ctx in
          let ctx2 = Taxonomy.Classify.start_revision db ~from_ctx:ctx1 "copy" in
          List.for_all
            (fun t ->
              OidSet.equal
                (Taxonomy.Classify.specimens_of db ~ctx:ctx1 t)
                (Taxonomy.Classify.specimens_of db ~ctx:ctx2 t))
            (flora.Taxonomy.Flora_gen.species_taxa @ flora.Taxonomy.Flora_gen.genus_taxa)))

(* ------------------------------------------------------------------ *)
(* POOL algebraic laws                                                 *)
(* ------------------------------------------------------------------ *)

let with_numbers f =
  with_db (fun db ->
      ignore (Database.define_class db "Num" [ Meta.attr "v" V.TInt ]);
      f db (fun vals -> List.iter (fun v -> ignore (Database.create db "Num" [ ("v", V.VInt v) ])) vals))

let ints_arb = QCheck.(list_of_size Gen.(int_bound 12) (int_bound 20))

let prop_pool_where_filters =
  QCheck.Test.make ~name:"POOL where = List.filter" ~count:40 ints_arb (fun vals ->
      with_numbers (fun db load ->
          load vals;
          let got =
            Pool_lang.Pool.rows db "select n.v from Num n where n.v > 10 order by n.v"
            |> List.map V.as_int
          in
          got = List.sort compare (List.filter (fun v -> v > 10) vals)))

let prop_pool_distinct_set_semantics =
  QCheck.Test.make ~name:"POOL distinct = sort_uniq" ~count:40 ints_arb (fun vals ->
      with_numbers (fun db load ->
          load vals;
          let got =
            Pool_lang.Pool.rows db "select distinct n.v from Num n order by n.v"
            |> List.map V.as_int
          in
          got = List.sort_uniq compare vals))

let prop_pool_set_algebra =
  QCheck.Test.make ~name:"POOL union/inter/except match set algebra" ~count:40
    (QCheck.pair ints_arb ints_arb) (fun (xs, ys) ->
      with_numbers (fun db load ->
          load [];
          ignore load;
          let lit l = "[" ^ String.concat ", " (List.map string_of_int l) ^ "]" in
          let run op =
            Pool_lang.Pool.query db (Printf.sprintf "%s %s %s" (lit xs) op (lit ys))
            |> V.as_elements |> List.map V.as_int
          in
          let module IS = Set.Make (Int) in
          let sx = IS.of_list xs and sy = IS.of_list ys in
          run "union" = IS.elements (IS.union sx sy)
          && run "inter" = IS.elements (IS.inter sx sy)
          && run "except" = IS.elements (IS.diff sx sy)))

let prop_pool_count_sum =
  QCheck.Test.make ~name:"POOL count/sum/min/max agree with folds" ~count:40 ints_arb
    (fun vals ->
      with_numbers (fun db load ->
          load vals;
          let scalar q = Pool_lang.Pool.query db q in
          V.as_int (scalar "count(select n from Num n)") = List.length vals
          && V.as_int (scalar "sum(select n.v from Num n)") = List.fold_left ( + ) 0 vals
          && (vals = []
             || V.as_int (scalar "min(select n.v from Num n)")
                  = List.fold_left min max_int vals
                && V.as_int (scalar "max(select n.v from Num n)")
                  = List.fold_left max min_int vals)))

(* ------------------------------------------------------------------ *)
(* Transaction properties                                              *)
(* ------------------------------------------------------------------ *)

(* A random interleaving of creates/updates/deletes inside aborted
   transactions must leave the database exactly as before. *)
let prop_abort_is_identity =
  QCheck.Test.make ~name:"aborted transactions leave no trace" ~count:25
    QCheck.(list_of_size Gen.(int_bound 15) (pair (int_bound 2) small_nat))
    (fun ops ->
      with_db (fun db ->
          ignore (Database.define_class db "Thing" [ Meta.attr "v" V.TInt ]);
          ignore (Database.define_rel db "Link" ~origin:"Thing" ~destination:"Thing");
          (* committed baseline *)
          let base = List.init 5 (fun i -> Database.create db "Thing" [ ("v", V.VInt i) ]) in
          let l0 = Database.link db "Link" ~origin:(List.nth base 0) ~destination:(List.nth base 1) in
          let snapshot () =
            ( Database.count db "Thing",
              List.map (fun o -> Database.get_attr db o "v") base,
              Database.get db l0 <> None )
          in
          let before = snapshot () in
          Database.begin_tx db;
          List.iter
            (fun (kind, x) ->
              let target = List.nth base (x mod 5) in
              match kind with
              | 0 -> ignore (Database.create db "Thing" [ ("v", V.VInt x) ])
              | 1 -> ( try Database.update db target "v" (V.VInt (x * 7)) with _ -> ())
              | _ -> ( try Database.delete db target with _ -> ()))
            ops;
          Database.abort db;
          snapshot () = before))

let () =
  Alcotest.run "properties"
    [
      ( "values",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_value_roundtrip; prop_ty_roundtrip; prop_compare_reflexive;
            prop_compare_antisymmetric; prop_compare_transitive; prop_vset_idempotent;
            prop_obj_roundtrip; prop_schema_roundtrip;
          ] );
      ( "graphs",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_closure_is_descendants_plus_root; prop_ancestors_descendants_dual;
            prop_dag_has_no_cycle; prop_path_endpoints;
          ] );
      ( "taxonomy",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_derivation_deterministic; prop_synonymy_symmetric;
            prop_revision_copy_preserves_specimen_sets; prop_compare_copy_is_identity;
          ] );
      ( "pool",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_pool_where_filters; prop_pool_distinct_set_semantics; prop_pool_set_algebra;
            prop_pool_count_sum;
          ] );
      ("transactions", [ QCheck_alcotest.to_alcotest prop_abort_is_identity ]);
    ]
