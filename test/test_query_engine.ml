(* Tests for the plan-then-run query engine (PR 3): index range/prefix
   pushdown, hash joins, the plan cache, CSR adjacency snapshots and
   their event-bus invalidation.  The central claim under test is
   bit-identical results: the optimized engine must return exactly what
   the legacy interpreter returns, on every query, after every kind of
   graph mutation. *)

open Pmodel
module V = Value
module P = Pool_lang.Pool
module Traverse = Pgraph.Traverse
module OidSet = Database.OidSet

let tmp_counter = ref 0

let tmp_path () =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "prom_qe_%d_%d.db" (Unix.getpid ()) !tmp_counter)

let with_db f =
  let path = tmp_path () in
  let db = Database.open_ path in
  Fun.protect
    ~finally:(fun () ->
      (try Database.close db with _ -> ());
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".journal") then Sys.remove (path ^ ".journal"))
    (fun () -> f db)

let str s = V.VString s
let vint i = V.VInt i

let value_testable =
  Alcotest.testable Value.pp (fun a b -> Value.compare_value a b = 0)

(* Firm schema, as in test_pool. *)
let setup db =
  ignore
    (Database.define_class db "Person" [ Meta.attr "name" V.TString; Meta.attr "age" V.TInt ]);
  ignore (Database.define_class db "Company" [ Meta.attr "name" V.TString ]);
  ignore
    (Database.define_rel db "WorksFor" ~origin:"Person" ~destination:"Company"
       ~attrs:[ Meta.attr "salary" V.TInt ]);
  ignore
    (Database.define_rel db "Manages" ~origin:"Person" ~destination:"Person"
       ~kind:Meta.Aggregation);
  let mk_p name age = Database.create db "Person" [ ("name", str name); ("age", vint age) ] in
  let mk_c name = Database.create db "Company" [ ("name", str name) ] in
  let alice = mk_p "alice" 30 in
  let bob = mk_p "bob" 40 in
  let carol = mk_p "carol" 50 in
  let dave = mk_p "dave" 25 in
  let acme = mk_c "acme" in
  let globex = mk_c "globex" in
  ignore (Database.link db "WorksFor" ~origin:alice ~destination:acme ~attrs:[ ("salary", vint 50) ]);
  ignore (Database.link db "WorksFor" ~origin:bob ~destination:acme ~attrs:[ ("salary", vint 60) ]);
  ignore (Database.link db "WorksFor" ~origin:carol ~destination:globex ~attrs:[ ("salary", vint 70) ]);
  ignore (Database.link db "Manages" ~origin:carol ~destination:bob);
  ignore (Database.link db "Manages" ~origin:bob ~destination:alice);
  ignore (Database.link db "Manages" ~origin:bob ~destination:dave);
  (alice, bob, carol, dave, acme, globex)

(* Both engines on the same query: results must be identical values. *)
let check_both db ?env q =
  let optimized = P.query ?env db q in
  let legacy = P.query ?env ~config:P.legacy_config db q in
  Alcotest.check value_testable (Printf.sprintf "optimized = legacy on %s" q) legacy optimized;
  optimized

(* --- index range / prefix pushdown ------------------------------------ *)

let test_range_pushdown () =
  with_db @@ fun db ->
  let _ = setup db in
  Database.create_index db "Person" "age";
  let r = check_both db "select p.name from Person p where p.age > 25 and p.age <= 40" in
  Alcotest.check value_testable "range rows"
    (V.VList [ str "alice"; str "bob" ]) r;
  (* the range scan actually ran, and probed no equality index *)
  let v, kind = P.query_explain db "select p from Person p where p.age >= 40" in
  ignore v;
  Alcotest.(check bool) "no equality probe for range" true (kind = `Extent_scan);
  let s = P.stats db in
  Alcotest.(check bool) "range_scans counted" true (s.Pool_lang.Eval.range_scans > 0)

let test_between () =
  with_db @@ fun db ->
  let _ = setup db in
  Database.create_index db "Person" "age";
  let r = check_both db "select p.name from Person p where p.age between 25 and 30 order by p.name" in
  Alcotest.check value_testable "between rows" (V.VList [ str "alice"; str "dave" ]) r

let test_prefix_pushdown () =
  with_db @@ fun db ->
  let _ = setup db in
  Database.create_index db "Person" "name";
  let r = check_both db "select p.name from Person p where p.name like 'a%'" in
  Alcotest.check value_testable "prefix rows" (V.VList [ str "alice" ]) r;
  (* pattern with a literal prefix and a suffix wildcard still narrows *)
  let r = check_both db "select p.name from Person p where p.name like 'c%l'" in
  Alcotest.check value_testable "prefix+suffix rows" (V.VList [ str "carol" ]) r

let test_index_range_unit () =
  with_db @@ fun db ->
  let _ = setup db in
  Database.create_index db "Person" "age";
  let card ?lo ?hi () =
    match Database.index_range db "Person" "age" ?lo ?hi () with
    | Some s -> OidSet.cardinal s
    | None -> -1
  in
  Alcotest.(check int) "age > 25" 3 (card ~lo:(vint 25, false) ());
  Alcotest.(check int) "age >= 25" 4 (card ~lo:(vint 25, true) ());
  Alcotest.(check int) "age <= 30" 2 (card ~hi:(vint 30, true) ());
  Alcotest.(check int) "25 < age < 50" 2 (card ~lo:(vint 25, false) ~hi:(vint 50, false) ());
  Alcotest.(check int) "unbounded" 4 (card ());
  Alcotest.(check int) "no index" (-1)
    (match Database.index_range db "Person" "name" () with
    | Some s -> OidSet.cardinal s
    | None -> -1);
  Database.create_index db "Person" "name";
  match Database.index_string_prefix db "Person" "name" "" with
  | Some s -> Alcotest.(check int) "empty prefix = all" 4 (OidSet.cardinal s)
  | None -> Alcotest.fail "prefix index missing"

let test_reversed_like () =
  (* [lit like x.attr] matches the literal against the *stored
     pattern*: it must never be normalised into a prefix scan over the
     stored values (a '%llo' pattern sorts outside the 'hello' prefix
     block, so the scan would drop rows the interpreter keeps). *)
  with_db @@ fun db ->
  ignore (Database.define_class db "Rule" [ Meta.attr "pat" V.TString ]);
  ignore (Database.create db "Rule" [ ("pat", str "%llo") ]);
  ignore (Database.create db "Rule" [ ("pat", str "he%") ]);
  ignore (Database.create db "Rule" [ ("pat", str "xyz") ]);
  Database.create_index db "Rule" "pat";
  let r = check_both db "select r.pat from Rule r where 'hello' like r.pat order by r.pat" in
  Alcotest.check value_testable "reversed like keeps pattern rows"
    (V.VList [ str "%llo"; str "he%" ]) r;
  (* reversed comparison operators, by contrast, do invert and push down *)
  let r = check_both db "select r.pat from Rule r where 'he%' <= r.pat order by r.pat" in
  Alcotest.check value_testable "reversed range" (V.VList [ str "he%"; str "xyz" ]) r

let test_prefix_null_error_semantics () =
  (* A row whose indexed attribute is unset indexes under VNull; LIKE
     on it raises in the interpreter.  The prefix pushdown must decline
     (falling back to the extent scan) so the optimized engine raises
     exactly where the legacy one does, instead of skipping the row and
     succeeding. *)
  with_db @@ fun db ->
  ignore (Database.define_class db "Doc" [ Meta.attr "title" V.TString ]);
  ignore (Database.create db "Doc" [ ("title", str "abc") ]);
  ignore (Database.create db "Doc" [ ("title", str "abd") ]);
  let untitled = Database.create db "Doc" [] in
  Database.create_index db "Doc" "title";
  Alcotest.(check bool) "pushdown declined on non-string keys" true
    (Database.index_string_prefix db "Doc" "title" "ab" = None);
  let q = "select d.title from Doc d where d.title like 'ab%'" in
  let outcome config =
    match P.query ?config db q with v -> Ok v | exception e -> Error (Printexc.to_string e)
  in
  let legacy = outcome (Some P.legacy_config) and optimized = outcome None in
  (match legacy with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "legacy unexpectedly succeeded on a null title");
  Alcotest.(check bool) "optimized raises exactly as legacy" true (legacy = optimized);
  (* once every key is a string again the pushdown resumes, still
     agreeing with legacy *)
  Database.delete db untitled;
  Alcotest.(check bool) "pushdown resumes on all-string keys" true
    (Database.index_string_prefix db "Doc" "title" "ab" <> None);
  let r = check_both db q in
  Alcotest.check value_testable "prefix rows" (V.VList [ str "abc"; str "abd" ]) r

(* --- hash joins -------------------------------------------------------- *)

let test_hash_join () =
  with_db @@ fun db ->
  let _ = setup db in
  let before = (P.stats db).Pool_lang.Eval.hash_joins in
  let q =
    "select p.name, q.name from Person p, Person q where p.age = q.age and p.name != q.name"
  in
  let r = check_both db q in
  Alcotest.check value_testable "self-join on age is empty" (V.VList []) r;
  Alcotest.(check bool) "hash join used" true
    ((P.stats db).Pool_lang.Eval.hash_joins > before);
  (* join with matches: people working for the same company *)
  let q =
    "select distinct p.name from Person p, Person q, Company c where c in \
     p.targets('WorksFor') and c in q.targets('WorksFor') and p.name != q.name order by p.name"
  in
  let r = check_both db q in
  Alcotest.check value_testable "colleagues" (V.VList [ str "alice"; str "bob" ]) r

let test_hash_join_mixed_numerics () =
  (* VInt and VFloat compare equal when numerically equal; the hash
     join must bucket them together, exactly as [=] does. *)
  with_db @@ fun db ->
  ignore (Database.define_class db "A" [ Meta.attr "x" V.TFloat ]);
  ignore (Database.define_class db "B" [ Meta.attr "y" V.TInt ]);
  ignore (Database.create db "A" [ ("x", V.VFloat 1.0) ]);
  ignore (Database.create db "A" [ ("x", V.VFloat 2.5) ]);
  ignore (Database.create db "B" [ ("y", vint 1) ]);
  ignore (Database.create db "B" [ ("y", vint 2) ]);
  let q = "select a.x, b.y from A a, B b where a.x = b.y" in
  let r = check_both db q in
  Alcotest.check value_testable "int/float join"
    (V.VList [ V.VList [ V.VFloat 1.0; vint 1 ] ]) r

(* --- plan cache -------------------------------------------------------- *)

let test_plan_cache () =
  with_db @@ fun db ->
  let _ = setup db in
  let q = "select p from Person p where p.age > 30" in
  let hits0 = (P.stats db).Pool_lang.Eval.plan_cache_hits in
  ignore (P.query db q);
  ignore (P.query db q);
  ignore (P.query db q);
  let hits1 = (P.stats db).Pool_lang.Eval.plan_cache_hits in
  Alcotest.(check bool) "repeat queries hit the plan cache" true (hits1 >= hits0 + 2);
  (* creating an index moves the epoch: the cached plan is stale and
     the replan must now use the index *)
  Database.create_index db "Person" "age";
  let misses0 = (P.stats db).Pool_lang.Eval.plan_cache_misses in
  ignore (P.query db q);
  let s = P.stats db in
  Alcotest.(check bool) "epoch bump forces replan" true
    (s.Pool_lang.Eval.plan_cache_misses > misses0);
  Alcotest.(check bool) "replanned query uses the range index" true
    (s.Pool_lang.Eval.range_scans > 0)

let test_plan_cache_schema_epoch () =
  (* Plans bake in which names denote class extents.  A query planned
     (and cached) while [Later] was undefined treats the range source
     as a per-row expression; defining the class must invalidate the
     cached plan, not leave the optimized engine erroring where the
     interpreter succeeds. *)
  with_db @@ fun db ->
  let q = "select x.name from Later x order by x.name" in
  (match P.query db q with
  | exception _ -> ()
  | _ -> Alcotest.fail "query on an undefined class should fail");
  ignore (Database.define_class db "Later" [ Meta.attr "name" V.TString ]);
  ignore (Database.create db "Later" [ ("name", str "n1") ]);
  let r = check_both db q in
  Alcotest.check value_testable "defined class now scans as an extent" (V.VList [ str "n1" ]) r

let test_state_survives_many_dbs () =
  (* Per-db engine state lives on the database record: using many
     databases at once must not evict another database's plan cache or
     reset its cumulative statistics (the old capped registry did). *)
  let paths = List.init 10 (fun _ -> tmp_path ()) in
  let dbs = List.map Database.open_ paths in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun db -> try Database.close db with _ -> ()) dbs;
      List.iter
        (fun p ->
          if Sys.file_exists p then Sys.remove p;
          if Sys.file_exists (p ^ ".journal") then Sys.remove (p ^ ".journal"))
        paths)
    (fun () ->
      List.iter
        (fun db ->
          ignore (Database.define_class db "N" [ Meta.attr "name" V.TString ]);
          ignore (Database.define_rel db "E" ~origin:"N" ~destination:"N"))
        dbs;
      let first = List.hd dbs in
      let a = Database.create first "N" [ ("name", str "a") ] in
      let b = Database.create first "N" [ ("name", str "b") ] in
      ignore (Database.link first "E" ~origin:a ~destination:b);
      ignore (Traverse.descendants first ~csr:true ~rel:"E" a);
      let q = "select n.name from N n order by n.name" in
      ignore (P.query first q);
      ignore (P.query first q);
      let s0 = P.stats first in
      Alcotest.(check bool) "cache hit recorded" true (s0.Pool_lang.Eval.plan_cache_hits > 0);
      Alcotest.(check int) "one csr build" 1 s0.Pool_lang.Eval.adjacency_rebuilds;
      (* touch the engine on every other database *)
      List.iter
        (fun db ->
          let x = Database.create db "N" [ ("name", str "x") ] in
          let y = Database.create db "N" [ ("name", str "y") ] in
          ignore (Database.link db "E" ~origin:x ~destination:y);
          ignore (Traverse.descendants db ~csr:true ~rel:"E" x);
          ignore (P.query db q))
        (List.tl dbs);
      let s1 = P.stats first in
      Alcotest.(check int) "rebuild count survives 9 other databases"
        s0.Pool_lang.Eval.adjacency_rebuilds s1.Pool_lang.Eval.adjacency_rebuilds;
      Alcotest.(check int) "plan-cache hits not reset" s0.Pool_lang.Eval.plan_cache_hits
        s1.Pool_lang.Eval.plan_cache_hits;
      ignore (P.query first q);
      let s2 = P.stats first in
      Alcotest.(check bool) "still hitting the same cache" true
        (s2.Pool_lang.Eval.plan_cache_hits > s1.Pool_lang.Eval.plan_cache_hits))

(* --- CSR snapshots: equivalence and invalidation ----------------------- *)

(* Compare every traversal entry point between CSR and legacy for all
   nodes of interest. *)
let check_traversals db ?context ~rel nodes =
  List.iter
    (fun n ->
      let d_csr = Traverse.descendants db ?context ~csr:true ~rel n in
      let d_leg = Traverse.descendants db ?context ~csr:false ~rel n in
      Alcotest.(check bool)
        (Printf.sprintf "descendants(%d) csr = legacy" n)
        true (OidSet.equal d_csr d_leg);
      let a_csr = Traverse.ancestors db ?context ~csr:true ~rel n in
      let a_leg = Traverse.ancestors db ?context ~csr:false ~rel n in
      Alcotest.(check bool)
        (Printf.sprintf "ancestors(%d) csr = legacy" n)
        true (OidSet.equal a_csr a_leg);
      let c_csr = Traverse.closure db ?context ~csr:true ~rel n in
      let c_leg = Traverse.closure db ?context ~csr:false ~rel n in
      Alcotest.(check bool)
        (Printf.sprintf "closure(%d) csr = legacy" n)
        true (OidSet.equal c_csr c_leg);
      let g_csr = Pgraph.Subgraph.extract db ?context ~csr:true ~rel n in
      let g_leg = Pgraph.Subgraph.extract db ?context ~csr:false ~rel n in
      Alcotest.(check bool)
        (Printf.sprintf "subgraph(%d) csr = legacy" n)
        true
        (OidSet.equal g_csr.Pgraph.Subgraph.nodes g_leg.Pgraph.Subgraph.nodes
        && List.sort compare g_csr.Pgraph.Subgraph.edges
           = List.sort compare g_leg.Pgraph.Subgraph.edges))
    nodes;
  let universe =
    List.fold_left (fun acc n -> OidSet.add n acc) OidSet.empty nodes
  in
  Alcotest.(check (list int)) "roots csr = legacy"
    (Traverse.roots db ?context ~csr:false ~rel universe)
    (Traverse.roots db ?context ~csr:true ~rel universe);
  Alcotest.(check (list int)) "leaves csr = legacy"
    (Traverse.leaves db ?context ~csr:false ~rel universe)
    (Traverse.leaves db ?context ~csr:true ~rel universe)

let test_csr_invalidation () =
  with_db @@ fun db ->
  let alice, bob, carol, dave, _, _ = setup db in
  let people = [ alice; bob; carol; dave ] in
  let rel = "Manages" in
  check_traversals db ~rel people;
  (* add: a new edge must appear in the next CSR traversal *)
  let e = Database.link db rel ~origin:dave ~destination:carol in
  check_traversals db ~rel people;
  let d = Traverse.descendants db ~csr:true ~rel dave in
  Alcotest.(check bool) "cycle traverses fully" true
    (OidSet.mem carol d && OidSet.mem bob d && OidSet.mem alice d);
  (* retarget: carol -> bob becomes carol -> dave *)
  Database.retarget db e ~destination:bob ();
  check_traversals db ~rel people;
  (* delete *)
  Database.unlink db e;
  check_traversals db ~rel people;
  (* synonym merge does not touch adjacency, but must not corrupt it *)
  Database.declare_synonym db alice dave;
  check_traversals db ~rel people;
  (* mutations inside an aborted transaction must leave no trace in the
     snapshots (the mirror is rebuilt wholesale on abort) *)
  Database.begin_tx db;
  let e2 = Database.link db rel ~origin:alice ~destination:carol in
  (* traverse mid-transaction so a snapshot is built from dirty state *)
  Alcotest.(check bool) "dirty edge visible mid-tx" true
    (OidSet.mem carol (Traverse.descendants db ~csr:true ~rel alice));
  ignore e2;
  Database.abort db;
  check_traversals db ~rel people;
  Alcotest.(check bool) "aborted edge gone" false
    (OidSet.mem carol (Traverse.descendants db ~csr:true ~rel alice))

let test_csr_contexts () =
  with_db @@ fun db ->
  let alice, bob, carol, dave, _, _ = setup db in
  let ctx1 = Database.create_context db "c1" in
  let ctx2 = Database.create_context db "c2" in
  ignore (Database.link db "Manages" ~context:ctx1 ~origin:alice ~destination:bob);
  ignore (Database.link db "Manages" ~context:ctx1 ~origin:bob ~destination:carol);
  ignore (Database.link db "Manages" ~context:ctx2 ~origin:alice ~destination:dave);
  let people = [ alice; bob; carol; dave ] in
  check_traversals db ~context:ctx1 ~rel:"Manages" people;
  check_traversals db ~context:ctx2 ~rel:"Manages" people;
  check_traversals db ~rel:"Manages" people;
  (* context-scoped results differ from each other as expected *)
  Alcotest.(check bool) "ctx1 sees carol" true
    (OidSet.mem carol (Traverse.descendants db ~context:ctx1 ~csr:true ~rel:"Manages" alice));
  Alcotest.(check bool) "ctx2 does not" false
    (OidSet.mem carol (Traverse.descendants db ~context:ctx2 ~csr:true ~rel:"Manages" alice))

let test_adjacency_rebuild_counter () =
  with_db @@ fun db ->
  let alice, _, _, _, _, _ = setup db in
  let r0 = (P.stats db).Pool_lang.Eval.adjacency_rebuilds in
  ignore (Traverse.descendants db ~csr:true ~rel:"Manages" alice);
  ignore (Traverse.descendants db ~csr:true ~rel:"Manages" alice);
  let r1 = (P.stats db).Pool_lang.Eval.adjacency_rebuilds in
  Alcotest.(check bool) "one build for two traversals" true (r1 = r0 + 1);
  ignore (Database.link db "Manages" ~origin:alice ~destination:alice);
  ignore (Traverse.descendants db ~csr:true ~rel:"Manages" alice);
  let r2 = (P.stats db).Pool_lang.Eval.adjacency_rebuilds in
  Alcotest.(check bool) "mutation forces a rebuild" true (r2 = r1 + 1)

(* --- string helpers ---------------------------------------------------- *)

let test_contains_sub () =
  let c = Pool_lang.Eval.contains_sub in
  Alcotest.(check bool) "empty sub" true (c "abc" "");
  Alcotest.(check bool) "empty both" true (c "" "");
  Alcotest.(check bool) "sub longer" false (c "ab" "abc");
  Alcotest.(check bool) "middle" true (c "abcdef" "cde");
  Alcotest.(check bool) "start" true (c "abcdef" "ab");
  Alcotest.(check bool) "end" true (c "abcdef" "ef");
  Alcotest.(check bool) "missing" false (c "abcdef" "ce");
  Alcotest.(check bool) "overlap" true (c "aaab" "aab");
  Alcotest.(check bool) "full" true (c "abc" "abc")

let test_like_eval_equiv =
  QCheck.Test.make ~name:"like_eval agrees with like_match" ~count:500
    QCheck.(
      pair
        (string_gen_of_size (Gen.int_bound 12) (Gen.oneofl [ 'a'; 'b'; '%'; '_' ]))
        (string_gen_of_size (Gen.int_bound 8) (Gen.oneofl [ 'a'; 'b'; '%'; '_' ])))
    (fun (s, pat) ->
      (* '%'/'_' in the subject are literals there, wildcards in pat *)
      Pool_lang.Eval.like_eval s pat = Pool_lang.Eval.like_match s pat)

(* --- randomized plan-vs-legacy equivalence ----------------------------- *)

let query_gen =
  let open QCheck.Gen in
  let name_lit = oneofl [ "'alice'"; "'bob'"; "'a%'"; "'%o%'"; "'x'" ] in
  let age_lit = map string_of_int (int_range 0 60) in
  let pred =
    oneof
      [
        map (fun v -> Printf.sprintf "p.age > %s" v) age_lit;
        map (fun v -> Printf.sprintf "p.age <= %s" v) age_lit;
        map (fun v -> Printf.sprintf "p.age = %s" v) age_lit;
        map2 (fun a b -> Printf.sprintf "p.age between %s and %s" a b) age_lit age_lit;
        map (fun v -> Printf.sprintf "p.name = %s" v) name_lit;
        map (fun v -> Printf.sprintf "p.name like %s" v) name_lit;
        map (fun v -> Printf.sprintf "%s like p.name" v) name_lit;
        return "p.age = q.age";
        return "p.name != q.name";
        return "q.age < p.age";
      ]
  in
  let preds = list_size (int_range 1 3) pred in
  let order = oneofl [ ""; " order by p.name"; " order by p.age desc, p.name" ] in
  let distinct = oneofl [ ""; "distinct " ] in
  map3
    (fun ps ob d ->
      Printf.sprintf "select %sp.name, q.age from Person p, Person q where %s%s" d
        (String.concat " and " ps) ob)
    preds order distinct

let test_plan_vs_legacy =
  QCheck.Test.make ~name:"planned results = legacy results" ~count:60
    (QCheck.make ~print:(fun q -> q) query_gen)
    (fun q ->
      with_db @@ fun db ->
      let _ = setup db in
      Database.create_index db "Person" "age";
      Database.create_index db "Person" "name";
      let optimized = P.query db q in
      let legacy = P.query ~config:P.legacy_config db q in
      if Value.compare_value optimized legacy <> 0 then
        QCheck.Test.fail_reportf "query %s diverged:@.opt: %a@.leg: %a" q Value.pp optimized
          Value.pp legacy;
      true)

(* --- POOL-level graph builtins under both engines ---------------------- *)

let test_pool_graph_builtins () =
  with_db @@ fun db ->
  let _, _, carol, _, _, _ = setup db in
  let env = [ ("boss", V.VRef carol) ] in
  ignore (check_both db ~env "descendants(boss, 'Manages')");
  ignore (check_both db ~env "ancestors(boss, 'Manages')");
  ignore (check_both db ~env "closure(boss, 'Manages')");
  ignore
    (check_both db ~env
       "select p from Person p where p in descendants(boss, 'Manages') order by p.name")

let () =
  Alcotest.run "query_engine"
    [
      ( "pushdown",
        [
          Alcotest.test_case "range" `Quick test_range_pushdown;
          Alcotest.test_case "between" `Quick test_between;
          Alcotest.test_case "like prefix" `Quick test_prefix_pushdown;
          Alcotest.test_case "index_range unit" `Quick test_index_range_unit;
          Alcotest.test_case "reversed like" `Quick test_reversed_like;
          Alcotest.test_case "prefix null error semantics" `Quick
            test_prefix_null_error_semantics;
        ] );
      ( "joins",
        [
          Alcotest.test_case "hash join" `Quick test_hash_join;
          Alcotest.test_case "mixed numerics" `Quick test_hash_join_mixed_numerics;
        ] );
      ( "plan cache",
        [
          Alcotest.test_case "hits and epochs" `Quick test_plan_cache;
          Alcotest.test_case "schema epoch" `Quick test_plan_cache_schema_epoch;
          Alcotest.test_case "state survives many dbs" `Quick test_state_survives_many_dbs;
        ] );
      ( "csr",
        [
          Alcotest.test_case "invalidation" `Quick test_csr_invalidation;
          Alcotest.test_case "contexts" `Quick test_csr_contexts;
          Alcotest.test_case "rebuild counter" `Quick test_adjacency_rebuild_counter;
        ] );
      ( "strings",
        [
          Alcotest.test_case "contains_sub" `Quick test_contains_sub;
          QCheck_alcotest.to_alcotest test_like_eval_equiv;
        ] );
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest test_plan_vs_legacy;
          Alcotest.test_case "graph builtins" `Quick test_pool_graph_builtins;
        ] );
    ]
