(* Replication torture and unit tests.

   Layers, bottom up:

   - wire: frame encode/decode roundtrips, plus every way a frame can
     be damaged (bad magic, unknown type, CRC mismatch, trailing bytes,
     oversized length, a cut at every byte of a frame).
   - redo: the pager's redo hook — after-image capture, LSN rules
     (monotonic, not advanced by aborts or empty commits, ?lsn
     override persisted), superset semantics for aborted transactions,
     hook exceptions swallowed.
   - feed: the primary's mirror/snapshot consistency and the
     resume-or-snapshot decision (stream id mismatch, replica ahead,
     backlog evicted).
   - apply: replica bootstrap + delta apply, duplicate-skip, delta
     before any snapshot.
   - tcp: a live primary/replica pair over loopback — snapshot
     bootstrap, delta streaming, reconnect-and-resume after the
     primary's feed server restarts.
   - sweep (the crash/fault matrix): a deterministic primary workload
     is captured once; then the replica is crashed at *every* mutating
     syscall of its apply (fault VFS), and the stream is cut at every
     frame boundary and inside frames.  After each failure the replica
     must recover to a *consistent committed image* — some primary
     LSN's exact bytes, never a torn mix — then resume per the real
     plan() decision and end byte-identical to the primary.

   Environment knobs:
     REPL_TORTURE=long   full-stride sweeps, longer workload (CI)
     REPL_SEED=<int>     workload seed (default 0xD1CE) *)

open Pstore
module F = Fault
module V = Vfs
module P = Pager
module S = Store
module W = Prepl.Wire
module L = Prepl.Link
module Feed = Prepl.Feed
module R = Prepl.Replica

let long_mode =
  match Sys.getenv_opt "REPL_TORTURE" with Some "long" -> true | _ -> false

let seed =
  match Sys.getenv_opt "REPL_SEED" with
  | Some s -> int_of_string s
  | None -> 0xD1CE

let page_of c = String.make P.page_size c

(* The content region of a page image: shipped pages carry a pager
   checksum trailer after [P.page_capacity], so content assertions
   compare up to there. *)
let body s = String.sub s 0 P.page_capacity
let body_of c = String.make P.page_capacity c

(* Read a whole file through a VFS (short reads retried). *)
let file_bytes (vfs : V.t) path =
  let fd = vfs.V.open_file path in
  let len = fd.V.size () in
  let buf = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let n = fd.V.pread ~buf ~off:!pos ~len:(len - !pos) ~at:!pos in
    if n <= 0 then Alcotest.failf "%s: read stalled at %d/%d" path !pos len;
    pos := !pos + n
  done;
  fd.V.close ();
  Bytes.to_string buf

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                       *)
(* ------------------------------------------------------------------ *)

(* Decode one frame from a replayed byte string. *)
let decode_string s = W.from_link (fst (L.of_string s))

let frames_equal msg a b =
  let show = function
    | W.Hello { stream_id; last_lsn } -> Printf.sprintf "Hello(%d,%d)" stream_id last_lsn
    | W.Snapshot { stream_id; lsn; data } ->
        Printf.sprintf "Snapshot(%d,%d,%d bytes)" stream_id lsn (String.length data)
    | W.Delta { lsn; pages } -> Printf.sprintf "Delta(%d,%d pages)" lsn (List.length pages)
    | W.Ack { lsn } -> Printf.sprintf "Ack(%d)" lsn
    | W.PageFetch { lsn; pages } ->
        Printf.sprintf "PageFetch(%d,[%s])" lsn
          (String.concat ";" (List.map string_of_int pages))
    | W.PageData { lsn; pages } ->
        Printf.sprintf "PageData(%d,%d pages)" lsn (List.length pages)
  in
  Alcotest.(check string) msg (show a) (show b);
  Alcotest.(check bool) (msg ^ " (payload)") true (a = b)

let test_wire_roundtrip () =
  List.iter
    (fun f -> frames_equal "roundtrip" f (decode_string (W.encode f)))
    [
      W.Hello { stream_id = 12345; last_lsn = 678 };
      W.Hello { stream_id = 0; last_lsn = 0 };
      W.Snapshot { stream_id = 9; lsn = 3; data = String.concat "" [ page_of 'a'; page_of 'b' ] };
      W.Snapshot { stream_id = 1; lsn = 1; data = "" };
      W.Delta { lsn = 7; pages = [ (0, page_of 'h'); (5, page_of 'x') ] };
      W.Delta { lsn = 8; pages = [] };
      W.Ack { lsn = max_int };
      W.PageFetch { lsn = 42; pages = [ 1; 5; 9 ] };
      W.PageFetch { lsn = 0; pages = [] };
      W.PageData { lsn = 42; pages = [ (1, page_of 'r'); (5, page_of 's') ] };
      W.PageData { lsn = 42; pages = [] };
    ]

let manual_frame ty payload =
  let e = Codec.Enc.create () in
  Codec.Enc.u32 e 0x5044524C;
  Codec.Enc.u8 e ty;
  Codec.Enc.u32 e (String.length payload);
  Codec.Enc.raw e payload;
  Codec.Enc.u32 e (Int32.to_int (Codec.Crc32.digest payload) land 0xffffffff);
  Codec.Enc.to_string e

let expect_wire_error msg s =
  match decode_string s with
  | _ -> Alcotest.failf "%s: damaged frame decoded" msg
  | exception W.Wire_error _ -> ()

let test_wire_damage () =
  let good = W.encode (W.Delta { lsn = 4; pages = [ (1, page_of 'q') ] }) in
  let flip i s =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    Bytes.to_string b
  in
  expect_wire_error "bad magic" (flip 0 good);
  expect_wire_error "unknown type" (flip 4 good);
  expect_wire_error "payload corrupt (CRC)" (flip 12 good);
  expect_wire_error "CRC field corrupt" (flip (String.length good - 1) good);
  (* a structurally valid frame with junk after its payload *)
  let e = Codec.Enc.create () in
  Codec.Enc.int e 5;
  expect_wire_error "trailing payload bytes" (manual_frame 4 (Codec.Enc.to_string e ^ "x"));
  (* an absurd length field is rejected before any allocation *)
  let huge = Bytes.of_string (String.sub good 0 W.header_size) in
  Bytes.set_int32_le huge 5 (Int32.of_int ((1 lsl 30) + 1));
  expect_wire_error "oversized payload length" (Bytes.to_string huge ^ "rest")

let test_wire_cut_everywhere () =
  let good = W.encode (W.Ack { lsn = 7 }) in
  for cut = 0 to String.length good - 1 do
    match W.from_link (fst (L.of_string ~cut good)) with
    | _ -> Alcotest.failf "cut@%d: truncated frame decoded" cut
    | exception L.Link_down _ -> ()
  done;
  frames_equal "uncut frame decodes" (W.Ack { lsn = 7 }) (decode_string good)

let test_wire_page_size_guard () =
  match W.encode (W.Delta { lsn = 1; pages = [ (0, "short") ] }) with
  | _ -> Alcotest.fail "Delta with a non-page payload encoded"
  | exception W.Wire_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Pager redo hook                                                     *)
(* ------------------------------------------------------------------ *)

let with_pager f =
  let fs = F.create ~seed () in
  F.set_short_transfers fs false;
  let vfs = F.vfs fs in
  let p = P.open_file ~vfs "h.db" in
  f vfs p

let fill p no c = P.with_write p no (fun b -> Bytes.fill b 0 P.page_size c)

let test_redo_capture () =
  with_pager (fun _vfs p ->
      let records = ref [] in
      P.set_redo_hook p (fun r -> records := r :: !records);
      let a = P.allocate p and b = P.allocate p in
      P.begin_tx p;
      fill p a 'a';
      fill p b 'b';
      P.commit p;
      match !records with
      | [ r ] ->
          Alcotest.(check int) "first commit is lsn 1" 1 r.P.lsn;
          Alcotest.(check int) "lsn visible on the pager" 1 (P.lsn p);
          Alcotest.(check bool) "header page shipped" true (List.mem_assoc 0 r.P.pages);
          Alcotest.(check string) "page a after-image" (body_of 'a') (body (List.assoc a r.P.pages));
          Alcotest.(check string) "page b after-image" (body_of 'b') (body (List.assoc b r.P.pages));
          Alcotest.(check (list int)) "pages sorted by number"
            (List.sort compare (List.map fst r.P.pages))
            (List.map fst r.P.pages);
          (* second commit: monotonic lsn, only the touched pages *)
          P.begin_tx p;
          fill p b 'B';
          P.commit p;
          (match !records with
          | [ r2; _ ] ->
              Alcotest.(check int) "lsn monotonic" 2 r2.P.lsn;
              Alcotest.(check bool) "untouched page not recaptured" false
                (List.mem_assoc a r2.P.pages);
              Alcotest.(check string) "new after-image" (body_of 'B') (body (List.assoc b r2.P.pages))
          | rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs))
      | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs))

let test_redo_abort_and_empty () =
  with_pager (fun _vfs p ->
      let records = ref [] in
      P.set_redo_hook p (fun r -> records := r :: !records);
      let a = P.allocate p and b = P.allocate p in
      P.begin_tx p;
      fill p a 'a';
      P.commit p;
      let lsn0 = P.lsn p in
      (* an empty commit neither advances the lsn nor fires the hook *)
      P.begin_tx p;
      P.commit p;
      Alcotest.(check int) "empty commit leaves lsn" lsn0 (P.lsn p);
      Alcotest.(check int) "empty commit fires no record" 1 (List.length !records);
      (* an aborted transaction fires no record and keeps the lsn *)
      P.begin_tx p;
      fill p a 'x';
      P.abort p;
      Alcotest.(check int) "abort leaves lsn" lsn0 (P.lsn p);
      Alcotest.(check int) "abort fires no record" 1 (List.length !records);
      (* superset semantics: the aborted tx's page stays in the capture
         set, so the NEXT commit — even one that writes nothing new —
         ships it with its rolled-back content and a replica that saw
         any leaked write converges back to the committed image *)
      P.begin_tx p;
      fill p b 'y';
      P.commit p;
      match !records with
      | r :: _ ->
          Alcotest.(check int) "lsn resumes" (lsn0 + 1) r.P.lsn;
          Alcotest.(check string) "aborted page re-shipped, rolled back"
            (body_of 'a') (body (List.assoc a r.P.pages));
          Alcotest.(check string) "committed page shipped" (body_of 'y')
            (body (List.assoc b r.P.pages))
      | [] -> Alcotest.fail "commit after abort fired no record")

let test_redo_lsn_override_persisted () =
  with_pager (fun vfs p ->
      let a = P.allocate p in
      P.begin_tx p;
      fill p a 'z';
      P.commit ~lsn:42 p;
      Alcotest.(check int) "override applied" 42 (P.lsn p);
      P.close p;
      let p2 = P.open_file ~vfs "h.db" in
      Alcotest.(check int) "override survives reopen" 42 (P.lsn p2);
      P.close p2)

let test_redo_hook_exception_swallowed () =
  with_pager (fun _vfs p ->
      P.set_redo_hook p (fun _ -> failwith "subscriber bug");
      let a = P.allocate p in
      P.begin_tx p;
      fill p a 'k';
      P.commit p (* must not raise *);
      Alcotest.(check int) "commit completed and advanced" 1 (P.lsn p);
      P.clear_redo_hook p;
      P.begin_tx p;
      fill p a 'm';
      P.commit p;
      Alcotest.(check int) "pager still fully usable" 2 (P.lsn p))

(* ------------------------------------------------------------------ *)
(* Workload + fixture shared by feed/apply/sweep tests                 *)
(* ------------------------------------------------------------------ *)

let rand_data rng =
  let n =
    match Random.State.int rng 10 with
    | 0 -> 5000 + Random.State.int rng 4000 (* forces the blob path *)
    | 1 -> 0
    | _ -> Random.State.int rng 300
  in
  let c0 = Random.State.int rng 26 in
  String.init n (fun i -> Char.chr (97 + ((c0 + i) mod 26)))

(* One randomized transaction; true = committed. *)
let run_tx s rng =
  S.begin_tx s;
  let nops = 1 + Random.State.int rng 4 in
  for _ = 1 to nops do
    let oid = 1 + Random.State.int rng 12 in
    if Random.State.int rng 4 = 0 then ignore (S.delete s ~oid)
    else S.put s ~oid (rand_data rng)
  done;
  if Random.State.int rng 5 = 0 then begin
    S.abort s;
    false
  end
  else begin
    S.commit s;
    true
  end

type fixture = {
  stream_id : int;
  snap_lsn : int;
  snap_data : string;
  deltas : (int * (int * string) list) list; (* every captured record, in order *)
  images : (int, string) Hashtbl.t; (* lsn -> committed primary file bytes *)
  final_lsn : int;
}

(* Run a randomized primary workload with a live feed; hand [f] the
   captured stream plus the still-open feed (so sweeps can consult the
   real plan() decision), then tear down. *)
let with_fixture ~txs f =
  let fs = F.create ~seed () in
  let vfs = F.vfs fs in
  let s = S.open_ ~vfs "primary.db" in
  let feed = Feed.create s in
  let images = Hashtbl.create 64 in
  let record_image () = Hashtbl.replace images (S.lsn s) (file_bytes vfs "primary.db") in
  let rng = Random.State.make [| seed; 0x5EED |] in
  (* a committed prefix, then the bootstrap snapshot *)
  for _ = 1 to 3 do
    if run_tx s rng then record_image ()
  done;
  S.with_tx s (fun () -> S.put s ~oid:1 "snapshot-floor");
  record_image ();
  let snap_lsn, snap_data = Feed.snapshot feed in
  Alcotest.(check string) "snapshot equals the primary file"
    (Hashtbl.find images snap_lsn) snap_data;
  (* the randomized tail, closed by a checkpoint commit so every page
     the primary ever flushed (aborted-tx leaks included) gets shipped *)
  for _ = 1 to txs do
    if run_tx s rng then record_image ()
  done;
  S.with_tx s (fun () -> S.put s ~oid:2 "checkpoint");
  record_image ();
  let deltas =
    List.map (fun r -> (r.Feed.r_lsn, r.Feed.r_pages)) (Feed.deltas_after feed ~after:0)
  in
  Alcotest.(check bool) "workload produced deltas" true (List.length deltas > 3);
  let fx =
    {
      stream_id = Feed.stream_id feed;
      snap_lsn;
      snap_data;
      deltas;
      images;
      final_lsn = S.lsn s;
    }
  in
  Fun.protect
    ~finally:(fun () ->
      Feed.detach feed;
      S.close s)
    (fun () -> f fx feed)

(* The on-wire stream for a replica: optionally a bootstrap snapshot,
   then every delta past [after].  Returns the bytes and the frame
   start offsets (for boundary cuts). *)
let encoded_stream fx ~with_snapshot ~after =
  let frames =
    (if with_snapshot then
       [ W.Snapshot { stream_id = fx.stream_id; lsn = fx.snap_lsn; data = fx.snap_data } ]
     else [])
    @ List.filter_map
        (fun (lsn, pages) -> if lsn > after then Some (W.Delta { lsn; pages }) else None)
        fx.deltas
  in
  let bufs = List.map W.encode frames in
  let starts =
    List.rev
      (snd
         (List.fold_left
            (fun (off, acc) b -> (off + String.length b, off :: acc))
            (0, []) bufs))
  in
  (String.concat "" bufs, starts)

(* Feed a replayed stream into an applier until the link dies or the
   stream ends (both surface as Link_down from the framing layer). *)
let apply_stream ap link =
  try
    while true do
      match W.from_link link with
      | W.Snapshot { stream_id; lsn; data } -> R.Apply.install_snapshot ap ~stream_id ~lsn ~data
      | W.Delta { lsn; pages } -> ignore (R.Apply.apply_delta ap ~lsn ~pages)
      | f -> frames_equal "stream frame" (W.Ack { lsn = -1 }) f
    done
  with L.Link_down _ -> ()

(* After a failure the replica must sit at some committed primary
   image: its header LSN names a real commit and the file's bytes match
   that commit's image exactly (a longer file is allowed — pages
   allocated by a rolled-back apply linger, exactly as they do on the
   primary after its own aborts — but the image prefix must match). *)
let check_consistent fx (vfs : V.t) lsn ctx =
  if lsn <> 0 then begin
    match Hashtbl.find_opt fx.images lsn with
    | None -> Alcotest.failf "%s: recovered lsn %d is not a committed primary lsn" ctx lsn
    | Some img ->
        let rb = file_bytes vfs "replica.db" in
        if String.length rb < String.length img then
          Alcotest.failf "%s: replica file at lsn %d is shorter than the image" ctx lsn;
        if String.sub rb 0 (String.length img) <> img then
          Alcotest.failf "%s: replica bytes diverge from the committed image at lsn %d" ctx
            lsn
  end

(* Resume exactly as the protocol would: consult the primary's plan()
   for this replica's (stream_id, lsn), then apply either the delta
   tail or a fresh bootstrap.  Ends byte-identical or fails. *)
let resume_and_verify fx feed (vfs : V.t) ctx =
  let ap = R.Apply.create ~vfs "replica.db" in
  let lsn = R.Apply.last_lsn ap in
  check_consistent fx vfs lsn ctx;
  let stream =
    match Feed.plan feed ~stream_id:(R.Apply.stream_id ap) ~last_lsn:lsn with
    | `Resume -> fst (encoded_stream fx ~with_snapshot:false ~after:lsn)
    | `Snapshot -> fst (encoded_stream fx ~with_snapshot:true ~after:0)
  in
  apply_stream ap (fst (L.of_string stream));
  Alcotest.(check int) (ctx ^ ": caught up to the primary") fx.final_lsn
    (R.Apply.last_lsn ap);
  R.Apply.close ap;
  let rb = file_bytes vfs "replica.db" in
  let img = Hashtbl.find fx.images fx.final_lsn in
  if rb <> img then
    Alcotest.failf "%s: resumed replica is not byte-identical (%d vs %d bytes)" ctx
      (String.length rb) (String.length img)

(* ------------------------------------------------------------------ *)
(* Feed decisions                                                      *)
(* ------------------------------------------------------------------ *)

let test_feed_plan () =
  with_fixture ~txs:4 (fun fx feed ->
      let sid = fx.stream_id in
      let at = Feed.lsn feed in
      let is_resume p = p = `Resume in
      Alcotest.(check bool) "caught-up follower resumes" true
        (is_resume (Feed.plan feed ~stream_id:sid ~last_lsn:at));
      Alcotest.(check bool) "covered follower resumes" true
        (is_resume (Feed.plan feed ~stream_id:sid ~last_lsn:fx.snap_lsn));
      Alcotest.(check bool) "foreign stream re-bootstraps" false
        (is_resume (Feed.plan feed ~stream_id:(sid + 1) ~last_lsn:at));
      Alcotest.(check bool) "replica ahead of primary re-bootstraps" false
        (is_resume (Feed.plan feed ~stream_id:sid ~last_lsn:(at + 5)));
      Alcotest.(check bool) "deltas_after filters strictly" true
        (List.for_all (fun r -> r.Feed.r_lsn > fx.snap_lsn)
           (Feed.deltas_after feed ~after:fx.snap_lsn)))

let test_feed_backlog_eviction () =
  let fs = F.create ~seed:(seed + 1) () in
  let vfs = F.vfs fs in
  let s = S.open_ ~vfs "evict.db" in
  (* a 1-byte cap keeps only the newest record: older followers must
     fall back to a snapshot *)
  let feed = Feed.create ~backlog_cap_bytes:1 s in
  for i = 1 to 4 do
    S.with_tx s (fun () -> S.put s ~oid:i (String.make 500 'e'))
  done;
  let sid = Feed.stream_id feed in
  Alcotest.(check bool) "evicted follower re-bootstraps" true
    (Feed.plan feed ~stream_id:sid ~last_lsn:(Feed.lsn feed - 3) = `Snapshot);
  Alcotest.(check bool) "covered follower still resumes" true
    (Feed.plan feed ~stream_id:sid ~last_lsn:(Feed.lsn feed) = `Resume);
  Feed.detach feed;
  S.close s

(* The sender's per-batch decision: a connection the backlog was evicted
   past must get a snapshot, never the surviving (gappy) delta tail —
   the silent-divergence hole the contiguity check closes. *)
let test_feed_next_batch_eviction () =
  let fs = F.create ~seed:(seed + 4) () in
  let vfs = F.vfs fs in
  let s = S.open_ ~vfs "batch.db" in
  let feed = Feed.create ~backlog_cap_bytes:1 s in
  for i = 1 to 4 do
    S.with_tx s (fun () -> S.put s ~oid:i (String.make 500 'b'))
  done;
  let at = Feed.lsn feed in
  (match Feed.next_batch feed ~after:at with
  | `Deltas [] -> ()
  | `Deltas _ -> Alcotest.fail "caught-up connection got deltas"
  | `Snapshot _ -> Alcotest.fail "caught-up connection got a snapshot");
  (match Feed.next_batch feed ~after:(at - 1) with
  | `Deltas [ r ] -> Alcotest.(check int) "contiguous tail resumes" at r.Feed.r_lsn
  | `Deltas rs -> Alcotest.failf "expected 1 delta, got %d" (List.length rs)
  | `Snapshot _ -> Alcotest.fail "covered connection forced to snapshot");
  (match Feed.next_batch feed ~after:(at - 2) with
  | `Snapshot (lsn, data) ->
      Alcotest.(check int) "snapshot is current" at lsn;
      Alcotest.(check string) "snapshot is the primary image"
        (file_bytes vfs "batch.db") data
  | `Deltas _ -> Alcotest.fail "evicted connection got the gappy delta tail");
  Feed.detach feed;
  S.close s

(* ------------------------------------------------------------------ *)
(* Apply: bootstrap, catch-up, duplicates                              *)
(* ------------------------------------------------------------------ *)

let test_apply_end_to_end () =
  with_fixture ~txs:6 (fun fx _feed ->
      let rfs = F.create ~seed:(seed + 2) () in
      let rvfs = F.vfs rfs in
      let ap = R.Apply.create ~vfs:rvfs "replica.db" in
      let stream, _ = encoded_stream fx ~with_snapshot:true ~after:0 in
      apply_stream ap (fst (L.of_string stream));
      Alcotest.(check int) "replica at the primary's lsn" fx.final_lsn
        (R.Apply.last_lsn ap);
      Alcotest.(check int) "bootstrapped exactly once" 1 ap.R.Apply.snapshots_loaded;
      Alcotest.(check int) "stream id adopted" fx.stream_id (R.Apply.stream_id ap);
      let before = file_bytes rvfs "replica.db" in
      Alcotest.(check bool) "byte-identical to the primary" true
        (before = Hashtbl.find fx.images fx.final_lsn);
      (* replaying the whole delta stream is a no-op: every record is a
         duplicate and must be skipped, not reapplied *)
      let applied0 = ap.R.Apply.applied_records in
      apply_stream ap (fst (L.of_string (fst (encoded_stream fx ~with_snapshot:false ~after:0))));
      Alcotest.(check int) "duplicates skipped" applied0 ap.R.Apply.applied_records;
      Alcotest.(check bool) "file untouched by duplicates" true
        (file_bytes rvfs "replica.db" = before);
      R.Apply.close ap)

let test_apply_delta_before_snapshot () =
  let rfs = F.create ~seed:(seed + 3) () in
  let ap = R.Apply.create ~vfs:(F.vfs rfs) "replica.db" in
  match R.Apply.apply_delta ap ~lsn:1 ~pages:[ (0, page_of 'x') ] with
  | _ -> Alcotest.fail "delta applied with no database file"
  | exception R.Replica_error _ -> R.Apply.close ap

(* LSNs are dense; a delta that skips ahead means records were lost
   upstream and must be rejected (forcing re-handshake), not applied. *)
let test_apply_gap_rejected () =
  with_fixture ~txs:4 (fun fx _feed ->
      let rfs = F.create ~seed:(seed + 5) () in
      let rvfs = F.vfs rfs in
      let ap = R.Apply.create ~vfs:rvfs "replica.db" in
      R.Apply.install_snapshot ap ~stream_id:fx.stream_id ~lsn:fx.snap_lsn
        ~data:fx.snap_data;
      (match
         R.Apply.apply_delta ap ~lsn:(fx.snap_lsn + 2) ~pages:[ (1, page_of 'g') ]
       with
      | _ -> Alcotest.fail "gappy delta applied"
      | exception R.Replica_error _ -> ());
      Alcotest.(check int) "file lsn unchanged by the rejected delta" fx.snap_lsn
        (R.Apply.last_lsn ap);
      Alcotest.(check string) "file bytes unchanged by the rejected delta"
        (Hashtbl.find fx.images fx.snap_lsn)
        (file_bytes rvfs "replica.db");
      (* the contiguous successor still applies *)
      (match List.assoc_opt (fx.snap_lsn + 1) fx.deltas with
      | Some pages ->
          Alcotest.(check int) "contiguous delta applies" (fx.snap_lsn + 1)
            (R.Apply.apply_delta ap ~lsn:(fx.snap_lsn + 1) ~pages)
      | None -> ());
      R.Apply.close ap)

(* Unresolvable hosts must surface as Link_down (with the socket
   closed), not as the bare Failure that inet_addr_of_string raises. *)
let test_connect_bad_host () =
  match L.connect ~host:"no-such-host.invalid" ~port:1 with
  | _ -> Alcotest.fail "connect to a nonexistent host succeeded"
  | exception L.Link_down _ -> ()

(* ------------------------------------------------------------------ *)
(* Live TCP pair: bootstrap, stream, reconnect                         *)
(* ------------------------------------------------------------------ *)

let tmp_base =
  Filename.concat (Filename.get_temp_dir_name ()) (Printf.sprintf "prom_repl_%d" (Unix.getpid ()))

let cleanup_tcp () =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [
      tmp_base ^ "_p.db";
      tmp_base ^ "_p.db.journal";
      tmp_base ^ "_r.db";
      tmp_base ^ "_r.db.journal";
      tmp_base ^ "_r.db.replid";
      tmp_base ^ "_r.db.replid.tmp";
      tmp_base ^ "_r.db.snap";
    ]

let wait ?(timeout = 20.) msg cond =
  let deadline = Unix.gettimeofday () +. timeout in
  while (not (cond ())) && Unix.gettimeofday () < deadline do
    Thread.delay 0.02
  done;
  if not (cond ()) then Alcotest.failf "timeout waiting for %s" msg

let read_disk path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_tcp_pair () =
  cleanup_tcp ();
  let ppath = tmp_base ^ "_p.db" and rpath = tmp_base ^ "_r.db" in
  let s = S.open_ ppath in
  let feed = Feed.create s in
  S.with_tx s (fun () -> S.put s ~oid:1 "before the replica exists");
  let srv = Feed.serve feed ~port:0 in
  let sess = R.start ~host:"127.0.0.1" ~port:srv.Feed.port rpath in
  Fun.protect
    ~finally:(fun () ->
      R.stop sess;
      (try Feed.stop_server srv with _ -> ());
      Feed.detach feed;
      S.close s;
      cleanup_tcp ())
    (fun () ->
      let caught_up () = R.Apply.last_lsn sess.R.apply = S.lsn s in
      wait "snapshot bootstrap" caught_up;
      Alcotest.(check int) "bootstrap used one snapshot" 1
        sess.R.apply.R.Apply.snapshots_loaded;
      (* live writes now flow as deltas *)
      for i = 2 to 6 do
        S.with_tx s (fun () -> S.put s ~oid:i (String.make (i * 700) 'd'))
      done;
      wait "delta catch-up" caught_up;
      Alcotest.(check bool) "deltas applied, no re-bootstrap" true
        (sess.R.apply.R.Apply.applied_records > 0
        && sess.R.apply.R.Apply.snapshots_loaded = 1);
      Alcotest.(check bool) "files byte-identical over TCP" true
        (read_disk ppath = read_disk rpath);
      (* the admin documents name their roles *)
      Alcotest.(check bool) "primary status" true
        (contains (Feed.status_json feed) "\"role\": \"primary\""
        || contains (Feed.status_json feed) "\"role\":\"primary\"");
      Alcotest.(check bool) "replica status" true
        (contains (R.status_json sess) "replica");
      Alcotest.(check bool) "repl metrics exposed" true
        (contains (Pobs.Metrics.expose ()) "pdb_repl_shipped_records_total");
      (* kill the primary's feed server; the replica must reconnect to
         the reborn server on the same port and RESUME — no snapshot *)
      Feed.stop_server srv;
      wait "replica notices the dead link" (fun () -> not sess.R.connected);
      S.with_tx s (fun () -> S.put s ~oid:7 "written while the link was down");
      let srv2 = Feed.serve feed ~port:srv.Feed.port in
      Fun.protect
        ~finally:(fun () -> try Feed.stop_server srv2 with _ -> ())
        (fun () ->
          wait "reconnect and resume" caught_up;
          Alcotest.(check bool) "reconnect counted" true (sess.R.reconnects > 0);
          Alcotest.(check int) "resume shipped deltas, not a snapshot" 1
            sess.R.apply.R.Apply.snapshots_loaded;
          Alcotest.(check bool) "byte-identical after reconnect" true
            (read_disk ppath = read_disk rpath)))

(* ------------------------------------------------------------------ *)
(* The fault sweeps (satellite: crash/fault matrix)                    *)
(* ------------------------------------------------------------------ *)

(* Crash the replica at every mutating syscall of its apply.  After
   each power cut, reopen (journal recovery), check the image is a
   committed one, then resume per plan() and demand byte-identity. *)
let test_crash_sweep () =
  let txs = if long_mode then 30 else 8 in
  with_fixture ~txs (fun fx feed ->
      let stream, _ = encoded_stream fx ~with_snapshot:true ~after:0 in
      let run vfs = apply_stream (R.Apply.create ~vfs "replica.db") (fst (L.of_string stream)) in
      (* calibration: count the syscalls a clean full apply performs *)
      let total =
        let rfs = F.create ~seed () in
        run (F.vfs rfs);
        F.syscalls rfs
      in
      Alcotest.(check bool) "apply does real I/O" true (total > 50);
      let step = if long_mode then 1 else max 1 (total / 60) in
      let fired = ref 0 in
      let i = ref 1 in
      while !i <= total do
        let rfs = F.create ~seed:(seed + !i) () in
        let rvfs = F.vfs rfs in
        F.set_crash_at rfs !i;
        (match run rvfs with
        | () -> () (* this run needed fewer syscalls; nothing fired *)
        | exception V.Crash ->
            incr fired;
            F.revive rfs;
            resume_and_verify fx feed rvfs (Printf.sprintf "crash@%d/%d" !i total));
        i := !i + step
      done;
      Alcotest.(check bool) "crash points fired" true (!fired > 0))

(* Cut the byte stream at every frame boundary and at offsets inside
   every frame: the replica must land exactly on the last fully applied
   commit, then resume to byte-identity. *)
let test_cut_sweep () =
  let txs = if long_mode then 30 else 8 in
  with_fixture ~txs (fun fx feed ->
      let stream, starts = encoded_stream fx ~with_snapshot:true ~after:0 in
      let len = String.length stream in
      let cuts =
        List.sort_uniq compare
          (List.concat_map
             (fun b ->
               [ b; b + 1; b + W.header_size; b + W.header_size + 7 ]
               |> List.filter (fun c -> c >= 0 && c < len))
             (starts @ [ len ]))
      in
      Alcotest.(check bool) "cut points cover the stream" true (List.length cuts > 8);
      List.iter
        (fun cut ->
          let rfs = F.create ~seed:(seed + cut) () in
          let rvfs = F.vfs rfs in
          let ap = R.Apply.create ~vfs:rvfs "replica.db" in
          apply_stream ap (fst (L.of_string ~cut stream));
          R.Apply.close ap;
          resume_and_verify fx feed rvfs (Printf.sprintf "cut@%d/%d" cut len))
        cuts)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "repl"
    [
      ( "wire",
        [
          Alcotest.test_case "frame roundtrips" `Quick test_wire_roundtrip;
          Alcotest.test_case "damaged frames rejected" `Quick test_wire_damage;
          Alcotest.test_case "cut at every byte of a frame" `Quick test_wire_cut_everywhere;
          Alcotest.test_case "delta page-size guard" `Quick test_wire_page_size_guard;
        ] );
      ( "redo",
        [
          Alcotest.test_case "after-image capture" `Quick test_redo_capture;
          Alcotest.test_case "aborts and empty commits" `Quick test_redo_abort_and_empty;
          Alcotest.test_case "lsn override persisted" `Quick test_redo_lsn_override_persisted;
          Alcotest.test_case "hook exceptions swallowed" `Quick
            test_redo_hook_exception_swallowed;
        ] );
      ( "feed",
        [
          Alcotest.test_case "resume-or-snapshot plan" `Quick test_feed_plan;
          Alcotest.test_case "backlog eviction forces snapshot" `Quick
            test_feed_backlog_eviction;
          Alcotest.test_case "sender batch falls back on eviction" `Quick
            test_feed_next_batch_eviction;
        ] );
      ( "apply",
        [
          Alcotest.test_case "bootstrap + catch-up + duplicates" `Quick test_apply_end_to_end;
          Alcotest.test_case "delta before snapshot" `Quick test_apply_delta_before_snapshot;
          Alcotest.test_case "lsn gap rejected" `Quick test_apply_gap_rejected;
          Alcotest.test_case "connect to bad host is Link_down" `Quick
            test_connect_bad_host;
        ] );
      ( "tcp",
        [ Alcotest.test_case "live pair: bootstrap, stream, reconnect" `Slow test_tcp_pair ] );
      ( "sweep",
        [
          Alcotest.test_case "replica crash at every syscall" `Slow test_crash_sweep;
          Alcotest.test_case "stream cut at every frame boundary" `Slow test_cut_sweep;
        ] );
    ]
