(* HTTP server tests: the full endpoint surface over a real loopback
   socket — /query, /check, /schema, /contexts, /stats, /metrics —
   plus the abuse paths (404, 405, 400, the 414 bounded-request-line
   path, malformed request lines) and graceful shutdown via the [stop]
   flag and via a SIGTERM to ourselves.

   The server runs on its own thread on an ephemeral port ([~port:0]
   with [?ready] reporting the bound port); each client is a raw
   [Unix] TCP socket so the tests control exactly what bytes go on the
   wire. *)

open Pmodel

let tmp_counter = ref 0

let tmp_path () =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "prom_server_%d_%d.db" (Unix.getpid ()) !tmp_counter)

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".journal" ]

(* --- a tiny raw-socket HTTP client ------------------------------------ *)

let recv_all fd =
  let b = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes b chunk 0 n;
        go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  go ();
  Buffer.contents b

(* Send [raw] verbatim, return the full response text. *)
let talk_raw port raw =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let pos = ref 0 and len = String.length raw in
      let buf = Bytes.unsafe_of_string raw in
      while !pos < len do
        pos := !pos + Unix.write fd buf !pos (len - !pos)
      done;
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      recv_all fd)

let get port target =
  talk_raw port (Printf.sprintf "GET %s HTTP/1.0\r\nHost: localhost\r\n\r\n" target)

let status_of response =
  match String.index_opt response '\r' with
  | Some i -> String.sub response 0 i
  | None -> response

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = if i + nn > nh then None else if String.sub hay i nn = needle then Some i else go (i + 1) in
  go 0

let contains hay needle = find_sub hay needle <> None

let body_of response =
  match find_sub response "\r\n\r\n" with
  | Some i -> String.sub response (i + 4) (String.length response - i - 4)
  | None -> ""

let check_status msg expected response =
  Alcotest.(check string) msg expected (status_of response)

(* --- server fixture ---------------------------------------------------- *)

(* Run a server for [f]; the stop flag (and a nudge request so the
   accept loop wakes) shuts it down afterwards. *)
let with_server ?readonly ?repl_status ?client_timeout ?max_conns f =
  let path = tmp_path () in
  let db = Database.open_ path in
  Taxonomy.Tax_schema.install db;
  let port_box = ref 0 in
  let port_ready = Mutex.create () in
  let cond = Condition.create () in
  let stop = ref false in
  let ready p =
    Mutex.lock port_ready;
    port_box := p;
    Condition.broadcast cond;
    Mutex.unlock port_ready
  in
  let th =
    Thread.create
      (fun () ->
        try
          Pserver.Http_server.serve ?readonly ?repl_status ?client_timeout ?max_conns db
            ~port:0 ~stop ~ready ()
        with e -> Printf.eprintf "server died: %s\n%!" (Printexc.to_string e))
      ()
  in
  Mutex.lock port_ready;
  while !port_box = 0 do
    Condition.wait cond port_ready
  done;
  let port = !port_box in
  Mutex.unlock port_ready;
  Fun.protect
    ~finally:(fun () ->
      stop := true;
      (* nudge the accept loop so it notices the flag promptly *)
      (try ignore (get port "/") with _ -> ());
      Thread.join th;
      Database.close db;
      cleanup path)
    (fun () -> f port)

(* --- endpoint coverage -------------------------------------------------- *)

let test_usage_and_404 () =
  with_server (fun port ->
      let r = get port "/" in
      check_status "usage 200" "HTTP/1.0 200 OK" r;
      if not (contains (body_of r) "GET /query") then Alcotest.fail "usage lists /query";
      check_status "unknown path 404" "HTTP/1.0 404 Not Found" (get port "/nope"))

let test_query_endpoint () =
  with_server (fun port ->
      let r = get port "/query?q=select%20t.rank%20from%20Taxon%20t" in
      check_status "query 200" "HTTP/1.0 200 OK" r;
      check_status "missing q 400" "HTTP/1.0 400 Bad Request" (get port "/query");
      let r = get port "/query?q=select%20%24%24garbage" in
      check_status "syntax error 400" "HTTP/1.0 400 Bad Request" r;
      if not (contains (body_of r) "syntax error") then
        Alcotest.fail "syntax error body names the problem")

let test_check_endpoint () =
  with_server (fun port ->
      let ok = get port "/check?q=select%20t.rank%20from%20Taxon%20t" in
      check_status "check 200" "HTTP/1.0 200 OK" ok;
      Alcotest.(check string) "check ok body" "ok\n" (body_of ok);
      let bad = get port "/check?q=select%20t.nope%20from%20Taxon%20t" in
      check_status "check of bad query still 200" "HTTP/1.0 200 OK" bad;
      if not (contains (body_of bad) "error") then
        Alcotest.fail "typecheck errors are reported in the body")

let test_schema_contexts_stats_metrics () =
  with_server (fun port ->
      let schema = get port "/schema" in
      check_status "schema 200" "HTTP/1.0 200 OK" schema;
      if not (contains (body_of schema) "class Taxon") then
        Alcotest.fail "schema lists Taxon";
      check_status "contexts 200" "HTTP/1.0 200 OK" (get port "/contexts");
      let stats = get port "/stats" in
      check_status "stats 200" "HTTP/1.0 200 OK" stats;
      if not (contains stats "application/json") then
        Alcotest.fail "stats is served as JSON";
      if not (contains (body_of stats) "\"storage\"") then
        Alcotest.fail "stats JSON has a storage section";
      let metrics = get port "/metrics" in
      check_status "metrics 200" "HTTP/1.0 200 OK" metrics;
      if not (contains metrics "text/plain; version=0.0.4") then
        Alcotest.fail "metrics content type is the Prometheus text format";
      if not (contains (body_of metrics) "pdb_http_requests_total") then
        Alcotest.fail "metrics exposes the request counter")

(* --- abuse paths --------------------------------------------------------- *)

let test_method_not_allowed () =
  with_server (fun port ->
      check_status "POST 405" "HTTP/1.0 405 Method Not Allowed"
        (talk_raw port "POST /query HTTP/1.0\r\n\r\n"))

let test_readonly_rejects_non_get () =
  with_server ~readonly:true (fun port ->
      let r = talk_raw port "POST /query HTTP/1.0\r\n\r\n" in
      check_status "readonly POST 403" "HTTP/1.0 403 Forbidden" r;
      if not (contains (body_of r) "read-only replica") then
        Alcotest.fail "403 body names the read-only replica";
      (* reads still work *)
      check_status "readonly GET 200" "HTTP/1.0 200 OK" (get port "/schema"))

let test_repl_status_endpoint () =
  with_server
    ~repl_status:(fun () -> "{\"role\":\"primary\"}")
    (fun port ->
      let r = get port "/repl" in
      check_status "/repl 200" "HTTP/1.0 200 OK" r;
      if not (contains r "application/json") then Alcotest.fail "/repl is JSON";
      if not (contains (body_of r) "\"role\"") then Alcotest.fail "/repl body passed through")

let test_repl_404_without_hook () =
  with_server (fun port ->
      check_status "/repl without a feed 404" "HTTP/1.0 404 Not Found" (get port "/repl"))

let test_long_request_line_414 () =
  with_server (fun port ->
      let r = talk_raw port ("GET /" ^ String.make 10_000 'a' ^ " HTTP/1.0\r\n\r\n") in
      check_status "overlong request line 414" "HTTP/1.0 414 URI Too Long" r)

let test_malformed_request_line () =
  with_server (fun port ->
      check_status "garbage request 400" "HTTP/1.0 400 Bad Request"
        (talk_raw port "this is not http\r\n\r\n");
      (* a client that connects and says nothing must not wedge the server *)
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.close fd;
      check_status "server alive after silent client" "HTTP/1.0 200 OK" (get port "/"))

(* --- keep-alive, pipelining, event-loop edges ---------------------------- *)

(* A persistent raw-socket client: send bytes, read exactly one
   response at a time (framed by Content-Length), keep the connection
   open between requests. *)
type kconn = { kfd : Unix.file_descr; mutable kbuf : string }

let kconnect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  { kfd = fd; kbuf = "" }

let kclose k = try Unix.close k.kfd with Unix.Unix_error _ -> ()

let ksend k s =
  let b = Bytes.unsafe_of_string s in
  let pos = ref 0 in
  while !pos < String.length s do
    pos := !pos + Unix.write k.kfd b !pos (String.length s - !pos)
  done

(* Read one complete response off the connection; extra pipelined bytes
   stay buffered for the next call. *)
let kresponse k =
  let chunk = Bytes.create 4096 in
  let refill () =
    match Unix.read k.kfd chunk 0 4096 with
    | 0 -> Alcotest.fail "connection closed mid-response"
    | n -> k.kbuf <- k.kbuf ^ Bytes.sub_string chunk 0 n
  in
  let rec headers_end () =
    match find_sub k.kbuf "\r\n\r\n" with
    | Some i -> i + 4
    | None ->
        refill ();
        headers_end ()
  in
  let he = headers_end () in
  let head = String.sub k.kbuf 0 he in
  let clen =
    let lower = String.lowercase_ascii head in
    match find_sub lower "content-length:" with
    | None -> Alcotest.fail "response has no Content-Length"
    | Some i -> (
        let rest = String.sub lower (i + 15) (String.length lower - i - 15) in
        let line = List.hd (String.split_on_char '\r' rest) in
        match int_of_string_opt (String.trim line) with
        | Some n -> n
        | None -> Alcotest.fail "bad Content-Length")
  in
  while String.length k.kbuf < he + clen do
    refill ()
  done;
  let resp = String.sub k.kbuf 0 (he + clen) in
  k.kbuf <- String.sub k.kbuf (he + clen) (String.length k.kbuf - he - clen);
  resp

let requests_counted () =
  int_of_float (Pobs.Metrics.counter_value Pserver.Http_server.m_requests)

let test_keep_alive () =
  with_server (fun port ->
      let k = kconnect port in
      Fun.protect
        ~finally:(fun () -> kclose k)
        (fun () ->
          (* HTTP/1.1 defaults to keep-alive: two requests, one socket *)
          ksend k "GET /schema HTTP/1.1\r\nHost: x\r\n\r\n";
          let r1 = kresponse k in
          check_status "first keep-alive response" "HTTP/1.0 200 OK" r1;
          if not (contains r1 "Connection: keep-alive") then
            Alcotest.fail "response advertises keep-alive";
          ksend k "GET /contexts HTTP/1.1\r\nHost: x\r\n\r\n";
          check_status "second response on the same socket" "HTTP/1.0 200 OK" (kresponse k);
          (* an explicit close is honoured *)
          ksend k "GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
          let r3 = kresponse k in
          check_status "final response" "HTTP/1.0 200 OK" r3;
          if not (contains r3 "Connection: close") then
            Alcotest.fail "explicit close is echoed"))

let test_pipelining_counts_per_request () =
  with_server (fun port ->
      let before = requests_counted () in
      let k = kconnect port in
      Fun.protect
        ~finally:(fun () -> kclose k)
        (fun () ->
          (* three requests in one write: responses must come back
             complete, in order, and each must count in the metric *)
          ksend k
            ("GET /schema HTTP/1.1\r\nHost: x\r\n\r\n"
           ^ "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n"
           ^ "GET /contexts HTTP/1.1\r\nHost: x\r\n\r\n");
          check_status "pipelined 1" "HTTP/1.0 200 OK" (kresponse k);
          check_status "pipelined 2 (in order)" "HTTP/1.0 404 Not Found" (kresponse k);
          check_status "pipelined 3" "HTTP/1.0 200 OK" (kresponse k);
          Alcotest.(check int) "pdb_http_requests_total counts per request, not per connection"
            (before + 3) (requests_counted ())))

let test_partial_frame_across_reads () =
  with_server (fun port ->
      let k = kconnect port in
      Fun.protect
        ~finally:(fun () -> kclose k)
        (fun () ->
          (* one request dribbled in three writes: the loop must
             re-parse as bytes arrive, not require one-read framing *)
          ksend k "GET /sch";
          Thread.delay 0.05;
          ksend k "ema HTTP/1.1\r\nHos";
          Thread.delay 0.05;
          ksend k "t: x\r\n\r\n";
          let r = kresponse k in
          check_status "split request answered" "HTTP/1.0 200 OK" r;
          if not (contains (body_of r) "class Taxon") then
            Alcotest.fail "split request routed to /schema"))

let test_slow_drip_408 () =
  with_server ~client_timeout:0.4 (fun port ->
      let k = kconnect port in
      Fun.protect
        ~finally:(fun () -> kclose k)
        (fun () ->
          (* a partial request held past the deadline: 408, then close *)
          ksend k "GET / HTT";
          Thread.delay 0.9;
          let r = recv_all k.kfd in
          check_status "slow drip answered with 408" "HTTP/1.0 408 Request Timeout" r))

let test_admission_control_503 () =
  with_server ~max_conns:2 (fun port ->
      (* two keep-alive connections occupy the admission bound ... *)
      let a = kconnect port and b = kconnect port in
      Fun.protect
        ~finally:(fun () ->
          kclose a;
          kclose b)
        (fun () ->
          ksend a "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
          check_status "conn A served" "HTTP/1.0 200 OK" (kresponse a);
          ksend b "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
          check_status "conn B served" "HTTP/1.0 200 OK" (kresponse b);
          (* ... so the third is answered 503 + Retry-After, not dropped *)
          let r = get port "/" in
          check_status "over capacity answered 503" "HTTP/1.0 503 Service Unavailable" r;
          if not (contains r "Retry-After:") then
            Alcotest.fail "503 carries Retry-After");
      (* capacity freed: service resumes — retry briefly, the loop
         reaps the closed connections asynchronously *)
      let rec resume tries =
        let r = get port "/" in
        if String.length r >= 12 && String.sub r 9 3 = "200" then r
        else if tries = 0 then r
        else begin
          Thread.delay 0.05;
          resume (tries - 1)
        end
      in
      check_status "served again after load drops" "HTTP/1.0 200 OK" (resume 40))

let test_select_fallback_backend () =
  (* PDB_POLLER=select forces the poller's portable backend; the whole
     request path must behave identically on it. *)
  Unix.putenv "PDB_POLLER" "select";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "PDB_POLLER" "")
    (fun () ->
      with_server (fun port ->
          let k = kconnect port in
          Fun.protect
            ~finally:(fun () -> kclose k)
            (fun () ->
              ksend k "GET /schema HTTP/1.1\r\nHost: x\r\n\r\n";
              check_status "select backend serves" "HTTP/1.0 200 OK" (kresponse k);
              ksend k "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
              check_status "keep-alive on select backend" "HTTP/1.0 200 OK" (kresponse k))))

(* --- graceful shutdown --------------------------------------------------- *)

let test_stop_flag_finishes_in_flight () =
  with_server (fun port ->
      (* the with_server teardown itself proves the stop flag works; here
         check a request racing the flag still gets a complete response *)
      let r = get port "/schema" in
      check_status "request completes" "HTTP/1.0 200 OK" r)

let test_sigterm_graceful () =
  (* a dedicated server (not the fixture) so the signal path is exercised
     end to end: SIGTERM to ourselves must make [serve] return — after
     finishing the in-flight request — rather than kill the process. *)
  let path = tmp_path () in
  let db = Database.open_ path in
  let port_box = ref 0 in
  let m = Mutex.create () in
  let c = Condition.create () in
  let returned = ref false in
  let th =
    Thread.create
      (fun () ->
        Pserver.Http_server.serve db ~port:0
          ~ready:(fun p ->
            Mutex.lock m;
            port_box := p;
            Condition.broadcast c;
            Mutex.unlock m)
          ();
        returned := true)
      ()
  in
  Mutex.lock m;
  while !port_box = 0 do
    Condition.wait c m
  done;
  let port = !port_box in
  Mutex.unlock m;
  check_status "server answers before the signal" "HTTP/1.0 200 OK" (get port "/");
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  Thread.join th;
  Alcotest.(check bool) "serve returned after SIGTERM" true !returned;
  Database.close db;
  cleanup path

let () =
  Alcotest.run "server"
    [
      ( "endpoints",
        [
          Alcotest.test_case "usage and 404" `Quick test_usage_and_404;
          Alcotest.test_case "/query" `Quick test_query_endpoint;
          Alcotest.test_case "/check" `Quick test_check_endpoint;
          Alcotest.test_case "/schema /contexts /stats /metrics" `Quick
            test_schema_contexts_stats_metrics;
          Alcotest.test_case "/repl passthrough" `Quick test_repl_status_endpoint;
          Alcotest.test_case "/repl 404 without hook" `Quick test_repl_404_without_hook;
        ] );
      ( "abuse",
        [
          Alcotest.test_case "405 on non-GET" `Quick test_method_not_allowed;
          Alcotest.test_case "403 on non-GET when read-only" `Quick
            test_readonly_rejects_non_get;
          Alcotest.test_case "414 on overlong request line" `Quick test_long_request_line_414;
          Alcotest.test_case "400 on malformed request" `Quick test_malformed_request_line;
        ] );
      ( "event-loop",
        [
          Alcotest.test_case "keep-alive" `Quick test_keep_alive;
          Alcotest.test_case "pipelining counts per request" `Quick
            test_pipelining_counts_per_request;
          Alcotest.test_case "partial frame across reads" `Quick
            test_partial_frame_across_reads;
          Alcotest.test_case "slow drip 408" `Quick test_slow_drip_408;
          Alcotest.test_case "admission control 503" `Quick test_admission_control_503;
          Alcotest.test_case "select fallback backend" `Quick test_select_fallback_backend;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "stop flag" `Quick test_stop_flag_finishes_in_flight;
          Alcotest.test_case "SIGTERM is graceful" `Quick test_sigterm_graceful;
        ] );
    ]
