(* Crash-recovery torture harness for the storage substrate.

   Runs a deterministic randomized workload of transactional
   put/delete/abort/vacuum steps over the fault-injecting in-memory VFS
   ({!Pstore.Fault}) and systematically crashes at *every* mutating
   syscall index, reopening through recovery each time and checking the
   core durability invariant:

     committed data exactly present, uncommitted data exactly absent,
     [Store.check] passes.

   A crash that lands inside [Store.commit] is ambiguous by design —
   the transaction either happened or it did not — so at those points
   *two* snapshots are acceptable: the pre-transaction state and the
   post-transaction state.  Everywhere else exactly the last-committed
   snapshot must come back.

   On top of the first-level sweep, every Nth crash point also sweeps a
   second level: crash *during recovery itself*, repeatedly, proving
   recovery is idempotent / re-runnable.  Separate cases cover torn
   journal frames, duplicate before-images, crash during abort, I/O
   errors (ENOSPC/EIO) on write, failed fsync, and a lying (no-op)
   fsync.

   Environment knobs:
     CRASH_TORTURE=long   longer workload (CI sweep)
     CRASH_SEED=<int>     workload seed (default 0xC0FFEE) *)

open Pstore
module F = Fault
module V = Vfs
module P = Pager
module S = Store

let long_mode =
  match Sys.getenv_opt "CRASH_TORTURE" with Some "long" -> true | _ -> false

let seed =
  match Sys.getenv_opt "CRASH_SEED" with
  | Some s -> int_of_string s
  | None -> 0xC0FFEE

(* ------------------------------------------------------------------ *)
(* Workload scripts                                                    *)
(* ------------------------------------------------------------------ *)

type op = Put of int * string | Del of int

type step =
  | Tx of op list * bool (* ops, true = commit, false = deliberate abort *)
  | Vacuum

let rand_data rng =
  let n =
    match Random.State.int rng 10 with
    | 0 -> 5000 + Random.State.int rng 4000 (* forces the blob path *)
    | 1 -> 0
    | _ -> Random.State.int rng 200
  in
  let c0 = Random.State.int rng 26 in
  String.init n (fun i -> Char.chr (97 + ((c0 + i) mod 26)))

let gen_script rng n =
  List.init n (fun _ ->
      match Random.State.int rng 12 with
      | 0 -> Vacuum
      | k ->
          let commit = k <> 1 in
          let nops = 1 + Random.State.int rng 4 in
          let ops =
            List.init nops (fun _ ->
                let oid = 1 + Random.State.int rng 12 in
                if Random.State.int rng 4 = 0 then Del oid
                else Put (oid, rand_data rng))
          in
          Tx (ops, commit))

(* ------------------------------------------------------------------ *)
(* Model + executor                                                    *)
(* ------------------------------------------------------------------ *)

type model = {
  mutable committed : (int, string) Hashtbl.t; (* last successful commit *)
  mutable committing : (int, string) Hashtbl.t option; (* commit in flight *)
}

let apply_ops base ops =
  let h = Hashtbl.copy base in
  List.iter
    (function
      | Put (oid, d) -> Hashtbl.replace h oid d
      | Del oid -> Hashtbl.remove h oid)
    ops;
  h

let run_tx store model ops commit =
  S.begin_tx store;
  ignore (S.fresh_oid store);
  List.iter
    (function
      | Put (oid, d) -> S.put store ~oid d
      | Del oid -> ignore (S.delete store ~oid))
    ops;
  if commit then begin
    let next = apply_ops model.committed ops in
    model.committing <- Some next;
    S.commit store;
    model.committed <- next;
    model.committing <- None
  end
  else S.abort store

(* Run [script]; a small cache forces evictions mid-transaction so the
   steal path (journal-fsync barrier before a dirty page hits disk) is
   exercised, not just the commit path. *)
let run_script ~vfs ~path script =
  let model = { committed = Hashtbl.create 16; committing = None } in
  match
    let store = ref (S.open_ ~cache_pages:16 ~vfs path) in
    List.iter
      (fun step ->
        match step with
        | Tx (ops, commit) -> run_tx !store model ops commit
        | Vacuum -> store := S.vacuum !store)
      script;
    S.close !store
  with
  | () -> `Completed model.committed
  | exception V.Crash ->
      `Crashed
        (model.committed
        :: (match model.committing with Some h -> [ h ] | None -> []))

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)
(* ------------------------------------------------------------------ *)

let dump store =
  let h = Hashtbl.create 16 in
  S.iter store (fun oid data -> Hashtbl.replace h oid data);
  h

let same a b =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold (fun k v ok -> ok && Hashtbl.find_opt b k = Some v) a true

let verify_open store acceptable ctx =
  ignore (S.check store);
  let actual = dump store in
  if not (List.exists (same actual) acceptable) then
    Alcotest.failf
      "%s: recovered state matches no acceptable snapshot (actual %d objects; \
       acceptable sizes [%s])"
      ctx (Hashtbl.length actual)
      (String.concat ";"
         (List.map (fun h -> string_of_int (Hashtbl.length h)) acceptable))

(* Reopen while repeatedly crashing recovery itself: each attempt lets
   recovery make [j] more syscalls of progress before the next power
   cut.  Recovery must be idempotent, so the eventual clean open still
   lands on an acceptable snapshot. *)
let rec reopen_with_chaos fs vfs path j =
  F.set_crash_at fs (F.syscalls fs + j);
  match S.open_ ~vfs path with
  | store ->
      F.revive fs (* disarm the unfired crash point *);
      store
  | exception V.Crash ->
      F.revive fs;
      reopen_with_chaos fs vfs path (j + 1)

(* ------------------------------------------------------------------ *)
(* The sweep                                                           *)
(* ------------------------------------------------------------------ *)

let crash_sweep ~steps ~chaos_every () =
  let script = gen_script (Random.State.make [| seed |]) steps in
  let path = "torture.db" in
  (* Calibration run: no injection; counts the mutating syscalls the
     full workload performs, which bounds the sweep. *)
  let total =
    let fs = F.create ~seed () in
    match run_script ~vfs:(F.vfs fs) ~path script with
    | `Completed _ -> F.syscalls fs
    | `Crashed _ -> Alcotest.fail "calibration run crashed with no injection"
  in
  Alcotest.(check bool) "workload does real I/O" true (total > 50);
  let torn = ref 0 and short_w = ref 0 and short_r = ref 0 and ext = ref 0 in
  for i = 1 to total do
    let fs = F.create ~seed () in
    let vfs = F.vfs fs in
    F.set_crash_at fs i;
    (match run_script ~vfs ~path script with
    | `Completed _ -> Alcotest.failf "crash point %d never fired" i
    | `Crashed acceptable ->
        F.revive fs;
        let store =
          if chaos_every > 0 && i mod chaos_every = 0 then
            reopen_with_chaos fs vfs path 1
          else S.open_ ~vfs path
        in
        verify_open store acceptable (Printf.sprintf "crash@%d/%d" i total);
        (* the recovered store must be fully usable, not just readable *)
        S.with_tx store (fun () -> S.put store ~oid:999 "post-recovery");
        (match S.get store ~oid:999 with
        | Some "post-recovery" -> ()
        | _ -> Alcotest.failf "crash@%d: post-recovery write lost" i);
        S.close store);
    let c = F.counters fs in
    torn := !torn + c.F.torn_writes;
    short_w := !short_w + c.F.short_writes;
    short_r := !short_r + c.F.short_reads;
    ext := !ext + c.F.extent_writes
  done;
  (* prove the nasty branches actually fired across the sweep *)
  Alcotest.(check bool) "torn writes exercised" true (!torn > 0);
  Alcotest.(check bool) "short writes exercised" true (!short_w > 0);
  Alcotest.(check bool) "short reads exercised" true (!short_r > 0);
  Alcotest.(check bool) "coalesced extent writes exercised" true (!ext > 0)

let test_sweep () =
  if long_mode then crash_sweep ~steps:40 ~chaos_every:5 ()
  else crash_sweep ~steps:12 ~chaos_every:5 ()

(* ------------------------------------------------------------------ *)
(* Journal edge cases (hand-crafted journal files)                     *)
(* ------------------------------------------------------------------ *)

let frame page_no (data : string) =
  assert (String.length data = P.page_size);
  let e = Codec.Enc.create ~size:(16 + P.page_size) () in
  Codec.Enc.u32 e 0x4A524E4C;
  Codec.Enc.i64 e (Int64.of_int page_no);
  Codec.Enc.u32 e (Int32.to_int (Codec.Crc32.digest data) land 0xffffffff);
  Codec.Enc.raw e data;
  Codec.Enc.to_string e

let write_file (vfs : V.t) path (chunks : string list) =
  let fd = vfs.V.open_file ~trunc:true path in
  let off = ref 0 in
  List.iter
    (fun s ->
      let b = Bytes.of_string s in
      let n = fd.V.pwrite ~buf:b ~off:0 ~len:(Bytes.length b) ~at:!off in
      assert (n = Bytes.length b);
      off := !off + n)
    chunks;
  fd.V.fsync ();
  fd.V.close ()

let page_of c = String.make P.page_size c

(* The fabricated db images above are raw byte patterns with no
   checksum trailers (and a garbage header flag byte), so the journal
   unit tests open them with verification off.  The real crash sweeps
   all run through checksummed stores. *)
let nock = { P.default_config with P.checksums = false }

let read_page p no =
  let b = P.read p no in
  Bytes.to_string b

(* A torn tail — here cut inside the CRC field of the second frame —
   must end the trustworthy prefix: the first frame is applied, the
   torn one ignored. *)
let test_torn_frame () =
  let fs = F.create ~seed:3 () in
  F.set_short_transfers fs false;
  let vfs = F.vfs fs in
  write_file vfs "t.db" [ page_of 'H'; page_of 'B' ];
  let f1 = frame 1 (page_of 'A') in
  let torn = String.sub (frame 0 (page_of 'Z')) 0 14 (* cut mid-CRC *) in
  write_file vfs "t.db.journal" [ f1; torn ];
  let p = P.open_file ~config:nock ~vfs "t.db" in
  Alcotest.(check string) "frame applied" (page_of 'A') (read_page p 1);
  Alcotest.(check string) "torn frame ignored" (page_of 'H') (read_page p 0);
  Alcotest.(check bool) "journal removed" false (vfs.V.exists "t.db.journal");
  P.close p

(* A full-length frame whose CRC does not match its payload ends the
   prefix too — and a perfectly valid frame *after* it must not be
   applied (nothing past the first bad frame can be trusted). *)
let test_bad_crc_stops_replay () =
  let fs = F.create ~seed:4 () in
  F.set_short_transfers fs false;
  let vfs = F.vfs fs in
  write_file vfs "t.db" [ page_of 'H'; page_of 'B' ];
  let f1 = frame 1 (page_of 'A') in
  let bad =
    let s = Bytes.of_string (frame 0 (page_of 'Z')) in
    Bytes.set s 100 '!' (* corrupt the payload: CRC now mismatches *);
    Bytes.to_string s
  in
  let after = frame 0 (page_of 'Q') in
  write_file vfs "t.db.journal" [ f1; bad; after ];
  let p = P.open_file ~config:nock ~vfs "t.db" in
  Alcotest.(check string) "valid prefix applied" (page_of 'A') (read_page p 1);
  Alcotest.(check string) "frames after bad CRC ignored" (page_of 'H')
    (read_page p 0);
  P.close p

(* Duplicate before-images of one page: the *first* is the
   pre-transaction state; later ones are intermediate and must lose. *)
let test_duplicate_before_images () =
  let fs = F.create ~seed:5 () in
  F.set_short_transfers fs false;
  let vfs = F.vfs fs in
  write_file vfs "t.db" [ page_of 'H'; page_of 'B' ];
  write_file vfs "t.db.journal"
    [ frame 1 (page_of 'A'); frame 1 (page_of 'X') ];
  let p = P.open_file ~config:nock ~vfs "t.db" in
  Alcotest.(check string) "first before-image wins" (page_of 'A')
    (read_page p 1);
  P.close p

(* Crash during [Store.abort]: sweep the cut over every syscall the
   rollback makes; after each cut, recovery must restore the
   pre-transaction state. *)
let test_crash_during_abort () =
  let rec attempt j =
    let fs = F.create ~seed:11 () in
    let vfs = F.vfs fs in
    let store = S.open_ ~vfs "a.db" in
    S.with_tx store (fun () ->
        S.put store ~oid:1 "one";
        S.put store ~oid:2 "two");
    S.begin_tx store;
    S.put store ~oid:1 (String.make 9000 'x');
    ignore (S.delete store ~oid:2);
    F.set_crash_at fs (F.syscalls fs + j);
    match S.abort store with
    | () ->
        F.revive fs;
        Alcotest.(check (option string)) "abort restored oid1" (Some "one")
          (S.get store ~oid:1);
        Alcotest.(check (option string)) "abort restored oid2" (Some "two")
          (S.get store ~oid:2);
        S.close store;
        j
    | exception V.Crash ->
        F.revive fs;
        let store = S.open_ ~vfs "a.db" in
        ignore (S.check store);
        Alcotest.(check (option string)) "post-crash oid1" (Some "one")
          (S.get store ~oid:1);
        Alcotest.(check (option string)) "post-crash oid2" (Some "two")
          (S.get store ~oid:2);
        S.close store;
        attempt (j + 1)
  in
  let completed_at = attempt 1 in
  Alcotest.(check bool) "abort sweep saw at least one crash" true
    (completed_at > 1)

(* Crash during a coalesced multi-page flush: adjacent dirty pages land
   as ONE extent write, and the fault VFS models the extra freedom a
   large write gives the disk — at a power cut an arbitrary per-sector
   subset of the extent may have reached the platter.  Sweep the cut
   across every syscall of the commit; after recovery every page must
   be entirely old or entirely new, and the outcome must be atomic
   across the whole batch (all old or all new, never a mix). *)
let test_crash_during_coalesced_flush () =
  let npages = 8 in
  let baseline k = Char.chr (Char.code 'A' + k) in
  let updated k = Char.chr (Char.code 'a' + k) in
  let page_is p no c =
    let b = P.read p no in
    let ok = ref true in
    for i = 0 to P.page_capacity - 1 do
      if Bytes.get b i <> c then ok := false
    done;
    !ok
  in
  let ext = ref 0 and crashes = ref 0 in
  let rec attempt i =
    let fs = F.create ~seed:29 () in
    F.set_short_transfers fs false;
    let vfs = F.vfs fs in
    let p = P.open_file ~vfs "c.db" in
    let pages = List.init npages (fun _ -> P.allocate p) in
    List.iteri
      (fun k no -> P.with_write p no (fun b -> Bytes.fill b 0 P.page_size (baseline k)))
      pages;
    P.begin_tx p;
    P.commit p;
    (* durable baseline *)
    P.begin_tx p;
    List.iteri
      (fun k no -> P.with_write p no (fun b -> Bytes.fill b 0 P.page_size (updated k)))
      pages;
    F.set_crash_at fs (F.syscalls fs + i);
    match P.commit p with
    | () ->
        F.revive fs;
        ext := !ext + (F.counters fs).F.extent_writes;
        List.iteri
          (fun k no ->
            Alcotest.(check bool) (Printf.sprintf "page %d new" no) true (page_is p no (updated k)))
          pages;
        P.close p
    | exception V.Crash ->
        F.revive fs;
        incr crashes;
        ext := !ext + (F.counters fs).F.extent_writes;
        let p2 = P.open_file ~vfs "c.db" in
        let indexed = List.mapi (fun k no -> (k, no)) pages in
        let all_old = List.for_all (fun (k, no) -> page_is p2 no (baseline k)) indexed in
        let all_new = List.for_all (fun (k, no) -> page_is p2 no (updated k)) indexed in
        if not (all_old || all_new) then
          Alcotest.failf "crash@%d: recovered state is a mix of old and new pages" i;
        P.close p2;
        attempt (i + 1)
  in
  attempt 1;
  Alcotest.(check bool) "coalesced flush crashed at least once" true (!crashes > 0);
  Alcotest.(check bool) "extent writes exercised under fault injection" true (!ext > 0)

(* Crash in the middle of a commit, then crash repeatedly during the
   recoveries that follow: the final state must still be one of the two
   legal outcomes. *)
let test_crash_during_recovery () =
  let fs = F.create ~seed:13 () in
  let vfs = F.vfs fs in
  let store = S.open_ ~vfs "r.db" in
  S.with_tx store (fun () -> S.put store ~oid:1 "base");
  S.begin_tx store;
  S.put store ~oid:1 (String.make 6000 'n');
  S.put store ~oid:2 "new";
  F.set_crash_at fs (F.syscalls fs + 3) (* lands inside commit *);
  (match S.commit store with
  | () -> Alcotest.fail "crash point never fired inside commit"
  | exception V.Crash -> ());
  F.revive fs;
  let store = reopen_with_chaos fs vfs "r.db" 1 in
  ignore (S.check store);
  let pre = Hashtbl.create 4 and post = Hashtbl.create 4 in
  Hashtbl.replace pre 1 "base";
  Hashtbl.replace post 1 (String.make 6000 'n');
  Hashtbl.replace post 2 "new";
  verify_open store [ pre; post ] "chaos-recovery";
  Alcotest.(check bool) "recovery was crashed at least twice" true
    ((F.counters fs).F.crashes >= 3);
  S.close store

(* ------------------------------------------------------------------ *)
(* I/O-error injections (no crash: typed errors, clean rollback)       *)
(* ------------------------------------------------------------------ *)

let io_error_sweep err =
  let fired = ref 0 in
  let k = ref 1 in
  let continue = ref true in
  while !continue do
    let fs = F.create ~seed:17 () in
    let vfs = F.vfs fs in
    let store = S.open_ ~vfs "e.db" in
    S.with_tx store (fun () ->
        S.put store ~oid:1 "base";
        S.put store ~oid:2 (String.make 5500 'b'));
    let base = dump store in
    F.fail_write fs ~nth:((F.counters fs).F.writes + !k) err;
    (match
       S.with_tx store (fun () ->
           S.put store ~oid:1 (String.make 7000 'z');
           S.put store ~oid:3 "three")
     with
    | () ->
        (* the armed write index lies beyond this transaction: done *)
        if (F.counters fs).F.failed_writes = 0 then continue := false
    | exception P.Io_error { error; _ } ->
        incr fired;
        Alcotest.(check bool) "typed error carries injected errno" true
          (error = err);
        Alcotest.(check bool) "store recovered to base state" true
          (same (dump store) base);
        ignore (S.check store));
    F.revive fs (* disarm an unfired injection before close *);
    S.close store;
    incr k
  done;
  Alcotest.(check bool) "write-error branch fired" true (!fired > 0)

let test_enospc () = io_error_sweep Unix.ENOSPC
let test_eio () = io_error_sweep Unix.EIO

(* Failed fsync during commit: the error is typed; afterwards the store
   holds either the old or the new state (the failure may land after
   the commit point), and is structurally sound either way. *)
let test_failed_fsync () =
  let fired = ref 0 in
  let k = ref 1 in
  let continue = ref true in
  while !continue do
    let fs = F.create ~seed:19 () in
    let vfs = F.vfs fs in
    let store = S.open_ ~vfs "f.db" in
    S.with_tx store (fun () -> S.put store ~oid:1 "base");
    let base = dump store in
    F.fail_fsync fs ~nth:((F.counters fs).F.fsyncs + !k);
    (match
       S.with_tx store (fun () ->
           S.put store ~oid:1 "new";
           S.put store ~oid:2 "two")
     with
    | () -> if (F.counters fs).F.failed_fsyncs = 0 then continue := false
    | exception P.Io_error { op; _ } ->
        incr fired;
        Alcotest.(check string) "fsync failure is typed" "fsync" op;
        ignore (S.check store);
        let post = Hashtbl.create 4 in
        Hashtbl.replace post 1 "new";
        Hashtbl.replace post 2 "two";
        let actual = dump store in
        Alcotest.(check bool) "old or new state, nothing torn" true
          (same actual base || same actual post));
    F.revive fs (* disarm an unfired injection before close *);
    S.close store;
    incr k
  done;
  Alcotest.(check bool) "failed-fsync branch fired" true (!fired > 0)

(* A lying disk: fsync silently does nothing.  Durability is forfeit —
   after a power cut the store may even be corrupt — but corruption
   must surface as a *typed* error from open/check, never as an
   untyped crash of the process. *)
let test_noop_fsync () =
  let fs = F.create ~seed:23 () in
  let vfs = F.vfs fs in
  F.set_fsync_noop fs true;
  let store = S.open_ ~vfs "n.db" in
  for i = 1 to 6 do
    S.with_tx store (fun () -> S.put store ~oid:i (rand_data (Random.State.make [| i |])))
  done;
  F.set_crash_at fs (F.syscalls fs + 1);
  (match
     S.with_tx store (fun () -> S.put store ~oid:7 "boom")
   with
  | () -> Alcotest.fail "crash point never fired"
  | exception V.Crash -> ());
  Alcotest.(check bool) "no-op fsync branch fired" true
    ((F.counters fs).F.noop_fsyncs > 0);
  F.revive fs;
  (match S.open_ ~vfs "n.db" with
  | store ->
      (try ignore (S.check store)
       with S.Store_error _ | P.Io_error _ | Pager.Pager_error _
       | Heap.Heap_error _ | Btree.Btree_error _ | Codec.Corrupt _ -> ());
      S.close store
  | exception
      ( S.Store_error _ | P.Io_error _ | Pager.Pager_error _
      | Heap.Heap_error _ | Btree.Btree_error _ | Codec.Corrupt _ ) ->
      (* detected corruption is an acceptable outcome on a lying disk *)
      ())

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "crash"
    [
      ( "torture",
        [
          Alcotest.test_case "crash sweep over full workload" `Slow test_sweep;
        ] );
      ( "journal",
        [
          Alcotest.test_case "torn frame mid-CRC" `Quick test_torn_frame;
          Alcotest.test_case "bad CRC stops replay" `Quick
            test_bad_crc_stops_replay;
          Alcotest.test_case "duplicate before-images: first wins" `Quick
            test_duplicate_before_images;
          Alcotest.test_case "crash during abort" `Quick test_crash_during_abort;
          Alcotest.test_case "crash during coalesced flush" `Quick
            test_crash_during_coalesced_flush;
          Alcotest.test_case "crash during recovery (idempotent)" `Quick
            test_crash_during_recovery;
        ] );
      ( "errors",
        [
          Alcotest.test_case "ENOSPC on write" `Quick test_enospc;
          Alcotest.test_case "EIO on write" `Quick test_eio;
          Alcotest.test_case "failed fsync" `Quick test_failed_fsync;
          Alcotest.test_case "no-op fsync (lying disk)" `Quick test_noop_fsync;
        ] );
    ]
