(* Tests for the storage substrate: codec, pager/journal, heap, btree, store. *)

open Pstore

let tmp_counter = ref 0

let tmp_path () =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "prometheus_test_%d_%d.db" (Unix.getpid ()) !tmp_counter)

let with_store ?cache_pages f =
  let path = tmp_path () in
  let s = Store.open_ ?cache_pages path in
  Fun.protect
    ~finally:(fun () ->
      (try Store.close s with _ -> ());
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".journal") then Sys.remove (path ^ ".journal"))
    (fun () -> f path s)

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let e = Codec.Enc.create () in
  Codec.Enc.u8 e 200;
  Codec.Enc.u16 e 60000;
  Codec.Enc.u32 e 4000000000;
  Codec.Enc.int e (-12345678901234);
  Codec.Enc.bool e true;
  Codec.Enc.float e 3.14159;
  Codec.Enc.string e "hello prometheus";
  Codec.Enc.string e "";
  let d = Codec.Dec.of_string (Codec.Enc.to_string e) in
  Alcotest.(check int) "u8" 200 (Codec.Dec.u8 d);
  Alcotest.(check int) "u16" 60000 (Codec.Dec.u16 d);
  Alcotest.(check int) "u32" 4000000000 (Codec.Dec.u32 d);
  Alcotest.(check int) "int" (-12345678901234) (Codec.Dec.int d);
  Alcotest.(check bool) "bool" true (Codec.Dec.bool d);
  Alcotest.(check (float 1e-12)) "float" 3.14159 (Codec.Dec.float d);
  Alcotest.(check string) "string" "hello prometheus" (Codec.Dec.string d);
  Alcotest.(check string) "empty string" "" (Codec.Dec.string d);
  Alcotest.(check bool) "eof" true (Codec.Dec.eof d)

let test_codec_underrun () =
  let d = Codec.Dec.of_string "ab" in
  Alcotest.check_raises "underrun raises"
    (Codec.Corrupt "decoder underrun: need 8 bytes, have 2") (fun () ->
      ignore (Codec.Dec.i64 d))

let test_crc32 () =
  (* Known vector: CRC32("123456789") = 0xCBF43926 *)
  let c = Codec.Crc32.digest "123456789" in
  Alcotest.(check int32) "crc32 vector" 0xCBF43926l c

(* ------------------------------------------------------------------ *)
(* Pager                                                               *)
(* ------------------------------------------------------------------ *)

let test_pager_basic () =
  let path = tmp_path () in
  let p = Pager.open_file path in
  let no = Pager.allocate p in
  Pager.with_write p no (fun b -> Bytes.blit_string "hello" 0 b 0 5);
  let b = Pager.read p no in
  Alcotest.(check string) "page content" "hello" (Bytes.sub_string b 0 5);
  Pager.close p;
  (* reopen and reread *)
  let p = Pager.open_file path in
  let b = Pager.read p no in
  Alcotest.(check string) "persisted" "hello" (Bytes.sub_string b 0 5);
  Pager.close p;
  Sys.remove path

let test_pager_abort_restores () =
  let path = tmp_path () in
  let p = Pager.open_file path in
  let no = Pager.allocate p in
  Pager.with_write p no (fun b -> Bytes.blit_string "before" 0 b 0 6);
  Pager.begin_tx p;
  Pager.with_write p no (fun b -> Bytes.blit_string "after!" 0 b 0 6);
  Alcotest.(check string) "in-tx view" "after!" (Bytes.sub_string (Pager.read p no) 0 6);
  Pager.abort p;
  Alcotest.(check string) "rolled back" "before" (Bytes.sub_string (Pager.read p no) 0 6);
  Pager.close p;
  Sys.remove path

let test_pager_commit_persists () =
  let path = tmp_path () in
  let p = Pager.open_file path in
  let no = Pager.allocate p in
  Pager.begin_tx p;
  Pager.with_write p no (fun b -> Bytes.blit_string "commit" 0 b 0 6);
  Pager.commit p;
  Pager.close p;
  let p = Pager.open_file path in
  Alcotest.(check string) "committed" "commit" (Bytes.sub_string (Pager.read p no) 0 6);
  Pager.close p;
  Sys.remove path

let test_pager_crash_recovery () =
  (* Simulate a crash: flush dirty pages mid-transaction (journal holds
     before-images), then abandon the pager without commit/abort. *)
  let path = tmp_path () in
  let p = Pager.open_file path in
  let no = Pager.allocate p in
  Pager.with_write p no (fun b -> Bytes.blit_string "stable" 0 b 0 6);
  Pager.begin_tx p;
  Pager.commit p;
  (* now mutate inside a tx and "crash" *)
  Pager.begin_tx p;
  Pager.with_write p no (fun b -> Bytes.blit_string "dirty!" 0 b 0 6);
  Pager.flush_all p;
  (* crash: abandon the pager, leaving the journal in place *)
  Pager.crash p;
  (* recovery happens on reopen *)
  let p2 = Pager.open_file path in
  Alcotest.(check string) "recovered" "stable" (Bytes.sub_string (Pager.read p2 no) 0 6);
  Pager.close p2;
  Sys.remove path

let test_pager_eviction () =
  let path = tmp_path () in
  let p = Pager.open_file ~cache_pages:8 path in
  let pages = List.init 64 (fun _ -> Pager.allocate p) in
  List.iteri
    (fun i no -> Pager.with_write p no (fun b -> Bytes.set_uint16_le b 0 i))
    pages;
  List.iteri
    (fun i no ->
      Alcotest.(check int) (Printf.sprintf "page %d" i) i (Bytes.get_uint16_le (Pager.read p no) 0))
    pages;
  Pager.close p;
  Sys.remove path

let test_coalesce_runs () =
  let check name expected nos =
    Alcotest.(check (list (pair int int))) name expected (Pager.coalesce_runs nos)
  in
  check "empty" [] [];
  check "single" [ (7, 1) ] [ 7 ];
  check "contiguous" [ (3, 4) ] [ 3; 4; 5; 6 ];
  check "two runs" [ (1, 2); (9, 3) ] [ 1; 2; 9; 10; 11 ];
  check "all singletons" [ (1, 1); (3, 1); (5, 1) ] [ 1; 3; 5 ];
  (* runs are capped at max_extent_pages *)
  let n = Pager.max_extent_pages in
  let long = List.init (n + 5) (fun i -> 100 + i) in
  check "capped" [ (100, n); (100 + n, 5) ] long

let test_pager_lru_order_in_tx () =
  (* LRU eviction must pick the least recently *touched* pages, and an
     eviction inside a transaction must steal dirty journaled pages
     correctly (journal synced first), leaving abort able to roll the
     whole transaction back. *)
  let path = tmp_path () in
  (* 8 data pages + the pinned header page: commits stamp the LSN on
     page 0, so it is always part of the working set. *)
  let p = Pager.open_file ~cache_pages:9 path in
  ignore (Pager.read p 0);
  let pages = List.init 8 (fun _ -> Pager.allocate p) in
  List.iteri
    (fun i no -> Pager.with_write p no (fun b -> Bytes.set_uint16_le b 0 (100 + i)))
    pages;
  Pager.begin_tx p;
  Pager.commit p;
  (* durable baseline *)
  Pager.begin_tx p;
  List.iteri
    (fun i no -> Pager.with_write p no (fun b -> Bytes.set_uint16_le b 0 (200 + i)))
    pages;
  (* refresh pages 3 and 4: pages 1 and 2 become the two oldest *)
  ignore (Pager.read p (List.nth pages 2));
  ignore (Pager.read p (List.nth pages 3));
  (* allocating a 9th data page overflows the cache: evict 10/4 = 2 *)
  let extra = Pager.allocate p in
  Alcotest.(check bool) "page 1 evicted" false (Pager.cached p 1);
  Alcotest.(check bool) "page 2 evicted" false (Pager.cached p 2);
  List.iter
    (fun no -> Alcotest.(check bool) (Printf.sprintf "page %d cached" no) true (Pager.cached p no))
    [ 3; 4; 5; 6; 7; 8; extra ];
  let st = Pager.stats p in
  Alcotest.(check int) "eviction count" 2 st.Pager.s_evictions;
  (* the evicted pages were dirty and journaled: reading them back must
     show the in-tx value (stolen to disk), and abort must undo it *)
  Alcotest.(check int) "stolen page readable" 200 (Bytes.get_uint16_le (Pager.read p 1) 0);
  Pager.abort p;
  List.iteri
    (fun i no ->
      Alcotest.(check int)
        (Printf.sprintf "page %d rolled back" no)
        (100 + i)
        (Bytes.get_uint16_le (Pager.read p no) 0))
    pages;
  Pager.close p;
  Sys.remove path

let test_journal_buffer_boundary () =
  (* Exercise the group-journal buffer at its flush boundary: a
     transaction journaling exactly [journal_buffer_frames] pages fills
     the buffer without flushing; one more forces a mid-transaction
     flush.  Both must roll back cleanly, through abort and through
     crash recovery. *)
  let nframes = Pager.journal_buffer_frames in
  let npages = nframes + 1 in
  let path = tmp_path () in
  let p = Pager.open_file ~cache_pages:(4 * npages) path in
  let pages = List.init npages (fun _ -> Pager.allocate p) in
  List.iteri (fun i no -> Pager.with_write p no (fun b -> Bytes.set_uint16_le b 0 i)) pages;
  Pager.begin_tx p;
  Pager.commit p;
  (* case 1: exactly at the buffer edge, frames never flushed — abort
     must still restore (the pages never reached disk either) *)
  Pager.begin_tx p;
  List.iteri
    (fun i no ->
      if i < nframes then Pager.with_write p no (fun b -> Bytes.set_uint16_le b 0 (1000 + i)))
    pages;
  Pager.abort p;
  List.iteri
    (fun i no ->
      Alcotest.(check int) (Printf.sprintf "abort page %d" no) i
        (Bytes.get_uint16_le (Pager.read p no) 0))
    pages;
  (* case 2: one frame past the edge (forces a mid-tx buffer flush),
     then flush dirty pages and crash — recovery must restore all *)
  Pager.begin_tx p;
  List.iteri
    (fun i no -> Pager.with_write p no (fun b -> Bytes.set_uint16_le b 0 (2000 + i)))
    pages;
  Pager.flush_all p;
  let st = Pager.stats p in
  Alcotest.(check int) "journal bytes (whole frames)" 0
    (st.Pager.s_journal_bytes mod Pager.journal_frame_size);
  Alcotest.(check bool) "all frames flushed" true
    (st.Pager.s_journal_bytes >= npages * Pager.journal_frame_size);
  Pager.crash p;
  let p2 = Pager.open_file path in
  List.iteri
    (fun i no ->
      Alcotest.(check int) (Printf.sprintf "recovered page %d" no) i
        (Bytes.get_uint16_le (Pager.read p2 no) 0))
    pages;
  Pager.close p2;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let make_heap path =
  let pager = Pager.open_file path in
  (* reserve page 0 as pseudo-header *)
  if Pager.page_count pager <= 1 then ignore (Pager.allocate pager);
  let pa = { Heap.alloc_page = (fun () -> Pager.allocate pager); free_page = (fun _ -> ()) } in
  (pager, Heap.create pager pa)

let test_heap_insert_get () =
  let path = tmp_path () in
  let pager, h = make_heap path in
  let r1 = Heap.insert h "alpha" in
  let r2 = Heap.insert h "beta" in
  Alcotest.(check string) "r1" "alpha" (Heap.get h r1);
  Alcotest.(check string) "r2" "beta" (Heap.get h r2);
  Pager.close pager;
  Sys.remove path

let test_heap_update_shrink_grow () =
  let path = tmp_path () in
  let pager, h = make_heap path in
  let r = Heap.insert h (String.make 100 'x') in
  let r2 = Heap.update h r "small" in
  Alcotest.(check bool) "in place" true (Heap.rid_equal r r2);
  Alcotest.(check string) "shrunk" "small" (Heap.get h r2);
  let r3 = Heap.update h r2 (String.make 200 'y') in
  Alcotest.(check string) "grown" (String.make 200 'y') (Heap.get h r3);
  Pager.close pager;
  Sys.remove path

let test_heap_delete_reuse () =
  let path = tmp_path () in
  let pager, h = make_heap path in
  let rs = List.init 50 (fun i -> Heap.insert h (Printf.sprintf "record-%04d" i)) in
  List.iteri (fun i r -> if i mod 2 = 0 then Heap.delete h r) rs;
  List.iteri
    (fun i r ->
      if i mod 2 = 1 then
        Alcotest.(check string) "survivor" (Printf.sprintf "record-%04d" i) (Heap.get h r))
    rs;
  (* deleted slots must raise *)
  (match rs with
  | r0 :: _ -> (
      match Heap.get h r0 with
      | exception Heap.Heap_error _ -> ()
      | _ -> Alcotest.fail "expected dead slot error")
  | [] -> ());
  Pager.close pager;
  Sys.remove path

let test_heap_blob () =
  let path = tmp_path () in
  let pager, h = make_heap path in
  let big = String.init 20_000 (fun i -> Char.chr (i mod 256)) in
  let r = Heap.insert h big in
  Alcotest.(check int) "blob len" 20_000 (String.length (Heap.get h r));
  Alcotest.(check string) "blob content" big (Heap.get h r);
  let bigger = String.init 50_000 (fun i -> Char.chr ((i * 7) mod 256)) in
  let r2 = Heap.update h r bigger in
  Alcotest.(check string) "blob update" bigger (Heap.get h r2);
  Heap.delete h r2;
  Pager.close pager;
  Sys.remove path

let test_heap_fragmentation_compaction () =
  let path = tmp_path () in
  let pager, h = make_heap path in
  (* Fill a page with records, delete alternate ones, then insert a
     record that only fits after compaction. *)
  let rs = List.init 8 (fun _ -> Heap.insert h (String.make 400 'a')) in
  List.iteri (fun i r -> if i mod 2 = 0 then Heap.delete h r) rs;
  let r = Heap.insert h (String.make 700 'b') in
  Alcotest.(check string) "compacted insert" (String.make 700 'b') (Heap.get h r);
  Pager.close pager;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Btree                                                               *)
(* ------------------------------------------------------------------ *)

let make_btree path =
  let pager = Pager.open_file path in
  if Pager.page_count pager <= 1 then ignore (Pager.allocate pager);
  let root = ref 0 in
  let bt =
    Btree.create pager ~root:0 ~set_root:(fun r -> root := r)
      ~alloc_page:(fun () -> Pager.allocate pager)
  in
  (pager, bt)

let test_btree_basic () =
  let path = tmp_path () in
  let pager, bt = make_btree path in
  Btree.insert bt 42L { Heap.page = 7; slot = 3 };
  (match Btree.find bt 42L with
  | Some r ->
      Alcotest.(check int) "page" 7 r.Heap.page;
      Alcotest.(check int) "slot" 3 r.Heap.slot
  | None -> Alcotest.fail "not found");
  Alcotest.(check bool) "missing" false (Btree.mem bt 43L);
  Pager.close pager;
  Sys.remove path

let test_btree_many_sequential () =
  let path = tmp_path () in
  let pager, bt = make_btree path in
  let n = 5000 in
  for i = 1 to n do
    Btree.insert bt (Int64.of_int i) { Heap.page = i; slot = i mod 100 }
  done;
  Alcotest.(check int) "check count" n (Btree.check bt);
  for i = 1 to n do
    match Btree.find bt (Int64.of_int i) with
    | Some r -> if r.Heap.page <> i then Alcotest.failf "wrong value for %d" i
    | None -> Alcotest.failf "missing key %d" i
  done;
  (* iteration is in key order *)
  let prev = ref Int64.min_int in
  Btree.iter bt (fun k _ ->
      if Int64.compare k !prev <= 0 then Alcotest.fail "iter not sorted";
      prev := k);
  Pager.close pager;
  Sys.remove path

let test_btree_random_delete () =
  let path = tmp_path () in
  let pager, bt = make_btree path in
  let n = 3000 in
  let keys = Array.init n (fun i -> Int64.of_int ((i * 2654435761) land 0xFFFFFF)) in
  Array.iter (fun k -> Btree.insert bt k { Heap.page = 1; slot = 0 }) keys;
  let module S = Set.Make (Int64) in
  let live = ref (Array.fold_left (fun s k -> S.add k s) S.empty keys) in
  Array.iteri
    (fun i k ->
      if i mod 3 = 0 then begin
        ignore (Btree.delete bt k);
        live := S.remove k !live
      end)
    keys;
  Alcotest.(check int) "cardinal after delete" (S.cardinal !live) (Btree.cardinal bt);
  S.iter (fun k -> if not (Btree.mem bt k) then Alcotest.fail "live key missing") !live;
  ignore (Btree.check bt);
  Pager.close pager;
  Sys.remove path

let test_btree_overwrite () =
  let path = tmp_path () in
  let pager, bt = make_btree path in
  Btree.insert bt 1L { Heap.page = 1; slot = 1 };
  Btree.insert bt 1L { Heap.page = 2; slot = 2 };
  (match Btree.find bt 1L with
  | Some r -> Alcotest.(check int) "overwritten" 2 r.Heap.page
  | None -> Alcotest.fail "missing");
  Alcotest.(check int) "no duplicate" 1 (Btree.cardinal bt);
  Pager.close pager;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let test_store_put_get () =
  with_store (fun _ s ->
      let o1 = Store.fresh_oid s in
      let o2 = Store.fresh_oid s in
      Store.put s ~oid:o1 "object one";
      Store.put s ~oid:o2 "object two";
      Alcotest.(check (option string)) "o1" (Some "object one") (Store.get s ~oid:o1);
      Alcotest.(check (option string)) "o2" (Some "object two") (Store.get s ~oid:o2);
      Alcotest.(check (option string)) "missing" None (Store.get s ~oid:9999);
      Store.put s ~oid:o1 "object one v2";
      Alcotest.(check (option string)) "updated" (Some "object one v2") (Store.get s ~oid:o1);
      Alcotest.(check bool) "delete" true (Store.delete s ~oid:o1);
      Alcotest.(check (option string)) "deleted" None (Store.get s ~oid:o1);
      Alcotest.(check bool) "delete missing" false (Store.delete s ~oid:o1))

let test_store_persistence () =
  let path = tmp_path () in
  let s = Store.open_ path in
  let oids = List.init 100 (fun _ -> Store.fresh_oid s) in
  List.iteri (fun i oid -> Store.put s ~oid (Printf.sprintf "payload %d" i)) oids;
  Store.close s;
  let s = Store.open_ path in
  List.iteri
    (fun i oid ->
      Alcotest.(check (option string))
        (Printf.sprintf "oid %d" oid)
        (Some (Printf.sprintf "payload %d" i))
        (Store.get s ~oid))
    oids;
  (* fresh oids don't collide after reopen *)
  let o = Store.fresh_oid s in
  if List.mem o oids then Alcotest.fail "oid collision after reopen";
  Store.close s;
  Sys.remove path

let test_store_tx_commit_abort () =
  with_store (fun _ s ->
      let o = Store.fresh_oid s in
      Store.with_tx s (fun () -> Store.put s ~oid:o "committed");
      Alcotest.(check (option string)) "committed" (Some "committed") (Store.get s ~oid:o);
      Store.begin_tx s;
      Store.put s ~oid:o "uncommitted";
      let o2 = Store.fresh_oid s in
      Store.put s ~oid:o2 "new in tx";
      Store.abort s;
      Alcotest.(check (option string)) "rolled back" (Some "committed") (Store.get s ~oid:o);
      Alcotest.(check (option string)) "new object gone" None (Store.get s ~oid:o2);
      ignore (Store.check s))

let test_store_tx_exception_aborts () =
  with_store (fun _ s ->
      let o = Store.fresh_oid s in
      Store.put s ~oid:o "v0";
      (try Store.with_tx s (fun () ->
               Store.put s ~oid:o "v1";
               failwith "boom")
       with Failure _ -> ());
      Alcotest.(check (option string)) "aborted on exception" (Some "v0") (Store.get s ~oid:o))

let test_store_nested_tx () =
  with_store (fun _ s ->
      let o = Store.fresh_oid s in
      Store.with_tx s (fun () ->
          Store.put s ~oid:o "outer";
          Store.with_tx s (fun () -> Store.put s ~oid:o "inner"));
      Alcotest.(check (option string)) "nested commit" (Some "inner") (Store.get s ~oid:o))

let test_store_iter_count () =
  with_store (fun _ s ->
      let oids = List.init 25 (fun _ -> Store.fresh_oid s) in
      List.iter (fun oid -> Store.put s ~oid (string_of_int oid)) oids;
      Alcotest.(check int) "count" 25 (Store.count s);
      let seen = ref [] in
      Store.iter s (fun oid data ->
          Alcotest.(check string) "iter payload" (string_of_int oid) data;
          seen := oid :: !seen);
      Alcotest.(check int) "iter count" 25 (List.length !seen))

let test_store_large_objects () =
  with_store (fun _ s ->
      let o = Store.fresh_oid s in
      let big = String.init 100_000 (fun i -> Char.chr (i mod 251)) in
      Store.put s ~oid:o big;
      Alcotest.(check (option string)) "big object" (Some big) (Store.get s ~oid:o);
      (* shrink it back to a small one: blob pages go to the free list *)
      Store.put s ~oid:o "tiny";
      Alcotest.(check (option string)) "shrunk" (Some "tiny") (Store.get s ~oid:o);
      let before = (Store.stats s).Store.pages in
      let o2 = Store.fresh_oid s in
      Store.put s ~oid:o2 (String.make 50_000 'z');
      let after = (Store.stats s).Store.pages in
      (* free blob pages must have been recycled: little or no growth *)
      if after - before > 14 then
        Alcotest.failf "free pages not recycled: grew by %d pages" (after - before))

let test_store_many_objects_eviction () =
  with_store ~cache_pages:32 (fun _ s ->
      let n = 2000 in
      let oids = Array.init n (fun _ -> Store.fresh_oid s) in
      Array.iteri (fun i oid -> Store.put s ~oid (Printf.sprintf "obj%06d" i)) oids;
      Array.iteri
        (fun i oid ->
          match Store.get s ~oid with
          | Some v -> if v <> Printf.sprintf "obj%06d" i then Alcotest.fail "bad value"
          | None -> Alcotest.fail "missing under eviction")
        oids;
      ignore (Store.check s))

(* qcheck: random workload equivalence against a Hashtbl model *)
let test_store_model_equivalence =
  QCheck.Test.make ~name:"store behaves like a map (random ops)" ~count:30
    QCheck.(list (pair (int_bound 50) (string_of_size Gen.(int_bound 2000))))
    (fun ops ->
      let path = tmp_path () in
      let s = Store.open_ path in
      let model : (int, string) Hashtbl.t = Hashtbl.create 16 in
      let oid_of i = i + 1 in
      List.iter
        (fun (i, data) ->
          let oid = oid_of i in
          if String.length data mod 7 = 0 && Hashtbl.mem model oid then begin
            ignore (Store.delete s ~oid);
            Hashtbl.remove model oid
          end
          else begin
            Store.put s ~oid data;
            Hashtbl.replace model oid data
          end)
        ops;
      let ok = ref true in
      Hashtbl.iter
        (fun oid data -> if Store.get s ~oid <> Some data then ok := false)
        model;
      if Store.count s <> Hashtbl.length model then ok := false;
      Store.close s;
      Sys.remove path;
      if Sys.file_exists (path ^ ".journal") then Sys.remove (path ^ ".journal");
      !ok)

let test_store_vacuum () =
  let path = tmp_path () in
  let s = Store.open_ path in
  (* create churn: lots of inserts and deletes leave dead pages behind *)
  let keep = ref [] in
  for i = 1 to 400 do
    let oid = Store.fresh_oid s in
    Store.put s ~oid (String.make (100 + (i mod 50)) 'x');
    if i mod 4 = 0 then keep := (oid, String.make (100 + (i mod 50)) 'x') :: !keep
    else ignore (Store.delete s ~oid)
  done;
  let before = (Store.stats s).Store.pages in
  let s = Store.vacuum s in
  let after = (Store.stats s).Store.pages in
  if after > before then Alcotest.failf "vacuum grew the file: %d -> %d pages" before after;
  List.iter
    (fun (oid, data) ->
      Alcotest.(check (option string)) "record survives vacuum" (Some data) (Store.get s ~oid))
    !keep;
  Alcotest.(check int) "count preserved" (List.length !keep) (Store.count s);
  (* fresh oids still unique after vacuum *)
  let o = Store.fresh_oid s in
  if List.mem_assoc o !keep then Alcotest.fail "oid reuse after vacuum";
  ignore (Store.check s);
  Store.close s;
  Sys.remove path

let test_journal_partial_frame_ignored () =
  (* a torn write leaves a partial frame at the journal tail: recovery
     must apply the complete frames and ignore the tail *)
  let path = tmp_path () in
  let p = Pager.open_file path in
  let no = Pager.allocate p in
  Pager.with_write p no (fun b -> Bytes.blit_string "base" 0 b 0 4);
  Pager.begin_tx p;
  Pager.with_write p no (fun b -> Bytes.blit_string "temp" 0 b 0 4);
  Pager.flush_all p;
  (* crash, then corrupt the journal by appending a partial frame *)
  Pager.crash p;
  let jc = open_out_gen [ Open_append; Open_binary ] 0o644 (path ^ ".journal") in
  output_string jc "JRNL-partial-garbage";
  close_out jc;
  let p2 = Pager.open_file path in
  Alcotest.(check string) "recovered despite torn tail" "base"
    (Bytes.sub_string (Pager.read p2 no) 0 4);
  Pager.close p2;
  Sys.remove path

let test_journal_garbage_rejected () =
  (* a journal of pure garbage must not corrupt recovery *)
  let path = tmp_path () in
  let p = Pager.open_file path in
  let no = Pager.allocate p in
  Pager.with_write p no (fun b -> Bytes.blit_string "keep" 0 b 0 4);
  Pager.close p;
  let jc = open_out_bin (path ^ ".journal") in
  output_string jc (String.make 10000 'Z');
  close_out jc;
  let p2 = Pager.open_file path in
  Alcotest.(check string) "data intact" "keep" (Bytes.sub_string (Pager.read p2 no) 0 4);
  Alcotest.(check bool) "journal removed" false (Sys.file_exists (path ^ ".journal"));
  Pager.close p2;
  Sys.remove path

let () =
  Alcotest.run "storage"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "underrun" `Quick test_codec_underrun;
          Alcotest.test_case "crc32 vector" `Quick test_crc32;
        ] );
      ( "pager",
        [
          Alcotest.test_case "basic read/write" `Quick test_pager_basic;
          Alcotest.test_case "abort restores" `Quick test_pager_abort_restores;
          Alcotest.test_case "commit persists" `Quick test_pager_commit_persists;
          Alcotest.test_case "crash recovery" `Quick test_pager_crash_recovery;
          Alcotest.test_case "eviction" `Quick test_pager_eviction;
          Alcotest.test_case "coalesce runs" `Quick test_coalesce_runs;
          Alcotest.test_case "LRU order under tx" `Quick test_pager_lru_order_in_tx;
          Alcotest.test_case "journal buffer boundary" `Quick test_journal_buffer_boundary;
          Alcotest.test_case "torn journal frame ignored" `Quick test_journal_partial_frame_ignored;
          Alcotest.test_case "garbage journal rejected" `Quick test_journal_garbage_rejected;
        ] );
      ( "heap",
        [
          Alcotest.test_case "insert/get" `Quick test_heap_insert_get;
          Alcotest.test_case "update shrink/grow" `Quick test_heap_update_shrink_grow;
          Alcotest.test_case "delete & reuse" `Quick test_heap_delete_reuse;
          Alcotest.test_case "blob records" `Quick test_heap_blob;
          Alcotest.test_case "fragmentation compaction" `Quick test_heap_fragmentation_compaction;
        ] );
      ( "btree",
        [
          Alcotest.test_case "basic" `Quick test_btree_basic;
          Alcotest.test_case "many sequential" `Quick test_btree_many_sequential;
          Alcotest.test_case "random delete" `Quick test_btree_random_delete;
          Alcotest.test_case "overwrite" `Quick test_btree_overwrite;
        ] );
      ( "store",
        [
          Alcotest.test_case "put/get/delete" `Quick test_store_put_get;
          Alcotest.test_case "persistence across reopen" `Quick test_store_persistence;
          Alcotest.test_case "tx commit/abort" `Quick test_store_tx_commit_abort;
          Alcotest.test_case "tx exception aborts" `Quick test_store_tx_exception_aborts;
          Alcotest.test_case "nested tx" `Quick test_store_nested_tx;
          Alcotest.test_case "iter/count" `Quick test_store_iter_count;
          Alcotest.test_case "large objects & page recycling" `Quick test_store_large_objects;
          Alcotest.test_case "eviction workload" `Quick test_store_many_objects_eviction;
          QCheck_alcotest.to_alcotest test_store_model_equivalence;
          Alcotest.test_case "vacuum" `Quick test_store_vacuum;
        ] );
    ]
