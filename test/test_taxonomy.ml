(* Tests for the taxonomy library: ranks, nomenclature, classification,
   the ICBN name-derivation algorithm (thesis fig. 3), the multiple-
   classifications scenario (thesis fig. 4), synonym detection and the
   ICBN rule set. *)

open Pmodel
open Taxonomy
module V = Value
module S = Tax_schema
module OidSet = Database.OidSet

let tmp_counter = ref 0

let tmp_path () =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "prom_tax_%d_%d.db" (Unix.getpid ()) !tmp_counter)

let with_db f =
  let path = tmp_path () in
  let db = Database.open_ path in
  Tax_schema.install db;
  Fun.protect
    ~finally:(fun () ->
      (try Database.close db with _ -> ());
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".journal") then Sys.remove (path ^ ".journal"))
    (fun () -> f db)

(* --- ranks ---------------------------------------------------------------- *)

let test_rank_order () =
  Alcotest.(check bool) "genus above species" true (Rank.strictly_above Rank.Genus Rank.Species);
  Alcotest.(check bool) "species not above genus" false
    (Rank.strictly_above Rank.Species Rank.Genus);
  Alcotest.(check bool) "subgenus between" true
    (Rank.strictly_above Rank.Genus Rank.Subgenus && Rank.strictly_above Rank.Subgenus Rank.Sectio);
  Alcotest.(check int) "24 ranks" 24 (List.length Rank.all);
  Alcotest.(check int) "7 primary" 7 (List.length Rank.primary);
  Alcotest.(check bool) "roundtrip" true (Rank.of_string "genus" = Some Rank.Genus);
  Alcotest.(check bool) "multinomial" true
    (Rank.is_multinomial Rank.Species && Rank.is_multinomial Rank.Varietas
    && not (Rank.is_multinomial Rank.Genus));
  Alcotest.(check (option string)) "family suffix" (Some "aceae")
    (Rank.required_suffix Rank.Familia)

(* --- nomenclature ------------------------------------------------------------ *)

let test_name_rendering () =
  with_db (fun db ->
      let linnaeus = Nomen.create_author db ~name:"Carl von Linnaeus" ~abbreviation:"L." in
      let lag = Nomen.create_author db ~name:"Lagasca" ~abbreviation:"Lag." in
      let jacq = Nomen.create_author db ~name:"Jacquin" ~abbreviation:"Jacq." in
      let apium =
        Nomen.create_name db ~epithet:"Apium" ~rank:Rank.Genus ~year:1753 ~author:linnaeus ()
      in
      let graveolens =
        Nomen.create_name db ~epithet:"graveolens" ~rank:Rank.Species ~year:1753
          ~author:linnaeus ~placed_in:apium ()
      in
      Alcotest.(check string) "genus" "Apium L." (Nomen.full_name db apium);
      Alcotest.(check string) "binomial" "Apium graveolens L." (Nomen.full_name db graveolens);
      (* recombination: basionym author in brackets *)
      let repens =
        Nomen.create_name db ~epithet:"repens" ~rank:Rank.Species ~year:1821 ~author:lag
          ~basionym_author:jacq ~placed_in:apium ()
      in
      Alcotest.(check string) "recombination" "Apium repens (Jacq.)Lag."
        (Nomen.full_name db repens))

let test_typification () =
  with_db (fun db ->
      let n = Nomen.create_name db ~epithet:"Apium" ~rank:Rank.Genus () in
      let s = Nomen.create_specimen db ~collector:"Linnaeus" ~number:107 ~herbarium:"BM" () in
      ignore (Nomen.set_type db ~name:n ~target:s ~kind:"lectotype");
      Alcotest.(check int) "one type" 1 (List.length (Nomen.types db n));
      (* role acquisition: the specimen now carries the inherited kind *)
      Alcotest.(check string) "role attr" "lectotype"
        (V.as_string (Database.get_attr db s "kind"));
      Alcotest.(check bool) "has type role" true (Database.has_role db s ~rel_name:S.has_type);
      Alcotest.(check (list int)) "typified_by" [ n ] (Nomen.typified_by db s))

(* --- classification ------------------------------------------------------------ *)

let test_circumscription_recursion () =
  with_db (fun db ->
      let ctx = Classify.create_classification db "test" in
      let genus = Classify.create_taxon db ~rank:Rank.Genus () in
      let sp1 = Classify.create_taxon db ~rank:Rank.Species () in
      let sp2 = Classify.create_taxon db ~rank:Rank.Species () in
      let mk_spec () = Nomen.create_specimen db () in
      let s1 = mk_spec () and s2 = mk_spec () and s3 = mk_spec () in
      ignore (Classify.circumscribe db ~ctx ~group:genus ~item:sp1 ());
      ignore (Classify.circumscribe db ~ctx ~group:genus ~item:sp2 ());
      ignore (Classify.circumscribe db ~ctx ~group:sp1 ~item:s1 ());
      ignore (Classify.circumscribe db ~ctx ~group:sp1 ~item:s2 ());
      ignore (Classify.circumscribe db ~ctx ~group:sp2 ~item:s3 ());
      Alcotest.(check int) "genus sees all specimens" 3
        (OidSet.cardinal (Classify.specimens_of db ~ctx genus));
      Alcotest.(check int) "species sees own" 2
        (OidSet.cardinal (Classify.specimens_of db ~ctx sp1));
      Alcotest.(check (list int)) "subtaxa" [ sp1; sp2 ]
        (List.sort compare (Classify.subtaxa db ~ctx genus));
      Alcotest.(check (option int)) "group_of" (Some genus) (Classify.group_of db ~ctx sp1);
      Alcotest.(check (list int)) "roots" [ genus ] (Classify.roots db ctx))

let test_exclusive_within_classification () =
  with_db (fun db ->
      let ctx = Classify.create_classification db "c" in
      let g1 = Classify.create_taxon db ~rank:Rank.Genus () in
      let g2 = Classify.create_taxon db ~rank:Rank.Genus () in
      let s = Nomen.create_specimen db () in
      ignore (Classify.circumscribe db ~ctx ~group:g1 ~item:s ());
      (match Classify.circumscribe db ~ctx ~group:g2 ~item:s () with
      | exception Database.Model_error _ -> ()
      | _ -> Alcotest.fail "specimen cannot be in two groups of one classification");
      (* but freely in another classification *)
      let ctx2 = Classify.create_classification db "c2" in
      ignore (Classify.circumscribe db ~ctx:ctx2 ~group:g2 ~item:s ());
      Alcotest.(check int) "overlapping classifications" 2
        (List.length (Database.incoming db ~rel_name:S.circumscribes s)))

(* --- name derivation: the thesis fig. 3 worked example ----------------------- *)

(* Nomenclatural background:
     Apium L. (Genus) 1753, type: Apium graveolens L. 1753,
       whose lectotype is specimen herb_cliff.
     Apium repens (Jacq.)Lag. (Species) 1821, placed in Apium,
       type: specimen rep_spec.
     Heliosciadium W.D.J.Koch. (Genus) 1824,
       type: Heliosciadium nodiflorum (L.)W.D.J.Koch. (Species) 1824,
       whose holotype is specimen nod_spec.
   Classification under revision:
     Taxon1 (Genus) contains Taxon2 (Species)
     Taxon2 contains rep_spec and nod_spec.
   Expected (thesis 2.1.2): Taxon1 = Heliosciadium (only genus name
   reachable from the type specimens); Taxon2's oldest species name is
   Apium repens (1821), but the combination (Heliosciadium, repens) was
   never published, so a NEW combination "Heliosciadium repens (Jacq.)"
   is created. *)
let apium_setup db =
  let linnaeus = Nomen.create_author db ~name:"Carl von Linnaeus" ~abbreviation:"L." in
  let lag = Nomen.create_author db ~name:"Lagasca" ~abbreviation:"Lag." in
  let jacq = Nomen.create_author db ~name:"Jacquin" ~abbreviation:"Jacq." in
  let koch = Nomen.create_author db ~name:"Koch" ~abbreviation:"W.D.J.Koch." in
  let apium = Nomen.create_name db ~epithet:"Apium" ~rank:Rank.Genus ~year:1753 ~author:linnaeus () in
  let graveolens =
    Nomen.create_name db ~epithet:"graveolens" ~rank:Rank.Species ~year:1753 ~author:linnaeus
      ~placed_in:apium ()
  in
  let herb_cliff = Nomen.create_specimen db ~collector:"Linnaeus" ~number:107 ~herbarium:"BM" () in
  ignore (Nomen.set_type db ~name:graveolens ~target:herb_cliff ~kind:"lectotype");
  ignore (Nomen.set_type db ~name:apium ~target:graveolens ~kind:"holotype");
  let repens =
    Nomen.create_name db ~epithet:"repens" ~rank:Rank.Species ~year:1821 ~author:lag
      ~basionym_author:jacq ~placed_in:apium ()
  in
  let rep_spec = Nomen.create_specimen db ~collector:"Jacquin" ~number:1 () in
  ignore (Nomen.set_type db ~name:repens ~target:rep_spec ~kind:"holotype");
  let helio =
    Nomen.create_name db ~epithet:"Heliosciadium" ~rank:Rank.Genus ~year:1824 ~author:koch ()
  in
  let nodiflorum =
    Nomen.create_name db ~epithet:"nodiflorum" ~rank:Rank.Species ~year:1824 ~author:koch
      ~basionym_author:linnaeus ~placed_in:helio ()
  in
  let nod_spec = Nomen.create_specimen db ~collector:"Koch" ~number:12 () in
  ignore (Nomen.set_type db ~name:nodiflorum ~target:nod_spec ~kind:"holotype");
  ignore (Nomen.set_type db ~name:helio ~target:nodiflorum ~kind:"holotype");
  ((apium, repens, helio, nodiflorum), (rep_spec, nod_spec), (linnaeus, lag, jacq, koch))

let test_derivation_apium () =
  with_db (fun db ->
      let (_apium, repens, helio, _nodiflorum), (rep_spec, nod_spec), _ = apium_setup db in
      let ctx = Classify.create_classification db "revision 2000" in
      let taxon1 = Classify.create_taxon db ~rank:Rank.Genus () in
      let taxon2 = Classify.create_taxon db ~rank:Rank.Species () in
      ignore (Classify.circumscribe db ~ctx ~group:taxon1 ~item:taxon2 ());
      ignore (Classify.circumscribe db ~ctx ~group:taxon2 ~item:rep_spec ());
      ignore (Classify.circumscribe db ~ctx ~group:taxon2 ~item:nod_spec ());
      let assignments = Derivation.derive db ~ctx ~root:taxon1 ~year:2000 () in
      Alcotest.(check int) "two taxa named" 2 (List.length assignments);
      let a1 = List.find (fun a -> a.Derivation.taxon = taxon1) assignments in
      let a2 = List.find (fun a -> a.Derivation.taxon = taxon2) assignments in
      (* Taxon1 must be Heliosciadium, an existing name *)
      (match a1.Derivation.outcome with
      | Derivation.Existing n -> Alcotest.(check int) "taxon1 = Heliosciadium" helio n
      | _ -> Alcotest.fail "taxon1 should reuse Heliosciadium");
      (* Taxon2 must be a NEW combination based on repens *)
      (match a2.Derivation.outcome with
      | Derivation.New_combination { name; basionym } ->
          Alcotest.(check int) "basionym is Apium repens" repens basionym;
          Alcotest.(check string) "epithet kept" "repens" (Nomen.epithet db name);
          Alcotest.(check (option int)) "placed in Heliosciadium" (Some helio)
            (Nomen.placement db name);
          Alcotest.(check bool) "rendered with bracketed basionym author" true
            (let fn = Nomen.full_name db name in
             fn = "Heliosciadium repens (Lag.)"
             || String.length fn >= 20
                && String.sub fn 0 20 = "Heliosciadium repens")
      | _ -> Alcotest.fail "taxon2 should be a new combination");
      (* calculated names recorded *)
      Alcotest.(check (option int)) "calculated name recorded" (Some helio)
        (Classify.calculated_name db taxon1))

let test_derivation_existing_combination () =
  with_db (fun db ->
      (* When the group's specimens all point to names already combined
         with the derived genus, the existing name is reused. *)
      let (apium, _repens, _helio, _nodiflorum), _, (linnaeus, _, _, _) = apium_setup db in
      let grav_spec = Nomen.create_specimen db () in
      let graveolens2 =
        Nomen.create_name db ~epithet:"dulce" ~rank:Rank.Species ~year:1800 ~author:linnaeus
          ~placed_in:apium ()
      in
      ignore (Nomen.set_type db ~name:graveolens2 ~target:grav_spec ~kind:"holotype");
      (* make the genus typified via this species so Apium is derivable:
         Apium's existing type is graveolens; add grav specimen under it *)
      let ctx = Classify.create_classification db "conservative" in
      let g = Classify.create_taxon db ~rank:Rank.Genus () in
      let s = Classify.create_taxon db ~rank:Rank.Species () in
      ignore (Classify.circumscribe db ~ctx ~group:g ~item:s ());
      ignore (Classify.circumscribe db ~ctx ~group:s ~item:grav_spec ());
      (* the genus-level candidate: dulce is not the type of any genus, so
         walk up from grav_spec: dulce (Species) only -> no genus name ->
         new genus name published *)
      let assignments = Derivation.derive db ~ctx ~root:g ~year:2001 () in
      let ag = List.find (fun a -> a.Derivation.taxon = g) assignments in
      let as_ = List.find (fun a -> a.Derivation.taxon = s) assignments in
      (match ag.Derivation.outcome with
      | Derivation.New_name _ -> ()
      | _ -> Alcotest.fail "genus has no reachable genus-rank name: new name expected");
      match as_.Derivation.outcome with
      | Derivation.New_combination _ -> () (* placed in the fresh genus *)
      | Derivation.Existing n ->
          Alcotest.(check int) "existing species name" graveolens2 n
      | _ -> Alcotest.fail "species should reuse or recombine dulce")

let test_derivation_elects_types () =
  with_db (fun db ->
      (* groups without any type specimen elect one and publish *)
      let ctx = Classify.create_classification db "fresh" in
      let g = Classify.create_taxon db ~rank:Rank.Genus () in
      Classify.set_working_name db ~taxon:g "Novagenus";
      let s1 = Nomen.create_specimen db ~collected:(V.date 1900) () in
      let s2 = Nomen.create_specimen db ~collected:(V.date 1850) () in
      ignore (Classify.circumscribe db ~ctx ~group:g ~item:s1 ());
      ignore (Classify.circumscribe db ~ctx ~group:g ~item:s2 ());
      let assignments = Derivation.derive db ~ctx ~root:g ~year:2002 () in
      match (List.hd assignments).Derivation.outcome with
      | Derivation.New_name { name; elected_type } ->
          Alcotest.(check string) "working name used" "Novagenus" (Nomen.epithet db name);
          Alcotest.(check int) "oldest specimen elected" s2 elected_type;
          Alcotest.(check (list (pair int string))) "holotype recorded"
            [ (s2, "holotype") ] (Nomen.types db name)
      | _ -> Alcotest.fail "expected new name")

(* --- multiple classifications: the fig. 4 shapes scenario ---------------------- *)

let test_shapes_multiple_classifications () =
  with_db (fun db ->
      (* specimens: shapes *)
      let white_square = Nomen.create_specimen db ~collector:"shape" ~number:1 () in
      let white_rect = Nomen.create_specimen db ~collector:"shape" ~number:2 () in
      let grey_tri = Nomen.create_specimen db ~collector:"shape" ~number:3 () in
      let black_oval = Nomen.create_specimen db ~collector:"shape" ~number:4 () in
      let dark_circle = Nomen.create_specimen db ~collector:"shape" ~number:5 () in
      (* classification 1 (taxonomist 1, by shape): two levels *)
      let c1 = Classify.create_classification db "taxonomist-1 by shape" in
      let shapes1 = Classify.create_taxon db ~rank:Rank.Genus () in
      let squares1 = Classify.create_taxon db ~rank:Rank.Species () in
      let triangles1 = Classify.create_taxon db ~rank:Rank.Species () in
      let ovals1 = Classify.create_taxon db ~rank:Rank.Species () in
      List.iter
        (fun (g, i) -> ignore (Classify.circumscribe db ~ctx:c1 ~group:g ~item:i ()))
        [
          (shapes1, squares1); (shapes1, triangles1); (shapes1, ovals1);
          (squares1, white_square); (squares1, white_rect);
          (triangles1, grey_tri);
          (ovals1, black_oval); (ovals1, dark_circle);
        ];
      (* classification 2 (taxonomist 3, by brightness) over the same specimens *)
      let c2 = Classify.create_classification db "taxonomist-3 by brightness" in
      let shapes2 = Classify.create_taxon db ~rank:Rank.Genus () in
      let light2 = Classify.create_taxon db ~rank:Rank.Species () in
      let dark2 = Classify.create_taxon db ~rank:Rank.Species () in
      List.iter
        (fun (g, i) -> ignore (Classify.circumscribe db ~ctx:c2 ~group:g ~item:i ()))
        [
          (shapes2, light2); (shapes2, dark2);
          (light2, white_square); (light2, white_rect);
          (dark2, grey_tri); (dark2, black_oval); (dark2, dark_circle);
        ];
      (* both classifications coexist and overlap on every specimen *)
      Alcotest.(check int) "c1 specimens" 5
        (OidSet.cardinal (Classify.specimens_of db ~ctx:c1 shapes1));
      Alcotest.(check int) "c2 specimens" 5
        (OidSet.cardinal (Classify.specimens_of db ~ctx:c2 shapes2));
      (* specimen-based synonym detection across classifications *)
      let syns = Synonymy.find db ~ctx_a:c1 ~ctx_b:c2 in
      (* squares1 {ws, wr} = light2 {ws, wr}: a full synonym *)
      let full =
        List.filter (fun s -> s.Synonymy.extent = Synonymy.Full) syns
        |> List.filter (fun s -> s.Synonymy.taxon_a = squares1 && s.Synonymy.taxon_b = light2)
      in
      Alcotest.(check int) "squares ~ light is a full synonym" 1 (List.length full);
      (* ovals1 {bo, dc} vs dark2 {gt, bo, dc}: pro parte *)
      let pp =
        List.filter
          (fun s ->
            s.Synonymy.taxon_a = ovals1 && s.Synonymy.taxon_b = dark2
            && s.Synonymy.extent = Synonymy.Pro_parte)
          syns
      in
      Alcotest.(check int) "ovals ~ dark pro parte" 1 (List.length pp);
      (* single-specimen overlap detection: triangles1 vs dark2 share grey_tri *)
      let susp = Synonymy.suspicious_overlaps db ~ctx_a:c1 ~ctx_b:c2 in
      Alcotest.(check bool) "suspicious single overlap found" true
        (List.exists (fun s -> s.Synonymy.taxon_a = triangles1 && s.Synonymy.taxon_b = dark2) susp))

let test_homotypic_synonyms () =
  with_db (fun db ->
      let spec = Nomen.create_specimen db () in
      let n1 = Nomen.create_name db ~epithet:"una" ~rank:Rank.Species ~year:1800 () in
      ignore (Nomen.set_type db ~name:n1 ~target:spec ~kind:"holotype");
      let c1 = Classify.create_classification db "a" in
      let c2 = Classify.create_classification db "b" in
      let t1 = Classify.create_taxon db ~rank:Rank.Species () in
      let t2 = Classify.create_taxon db ~rank:Rank.Species () in
      ignore (Classify.circumscribe db ~ctx:c1 ~group:t1 ~item:spec ());
      ignore (Classify.circumscribe db ~ctx:c2 ~group:t2 ~item:spec ());
      match Synonymy.find db ~ctx_a:c1 ~ctx_b:c2 with
      | [ s ] ->
          Alcotest.(check bool) "homotypic" true (s.Synonymy.typ = Synonymy.Homotypic);
          Alcotest.(check bool) "full" true (s.Synonymy.extent = Synonymy.Full)
      | l -> Alcotest.failf "expected one synonym, got %d" (List.length l))

(* --- revisions ------------------------------------------------------------------ *)

let test_revision_workflow () =
  with_db (fun db ->
      let flora = Flora_gen.generate db ~params:{ Flora_gen.default with seed = 7 } () in
      let ctx2 = Classify.start_revision db ~from_ctx:flora.Flora_gen.ctx "revision-1" in
      (* revision starts as a faithful copy *)
      let g1 = Pgraph.Subgraph.of_context db ~rel:S.circumscribes flora.Flora_gen.ctx in
      let g2 = Pgraph.Subgraph.of_context db ~rel:S.circumscribes ctx2 in
      Alcotest.(check bool) "copy preserves structure" true (Pgraph.Subgraph.same_structure db g1 g2);
      (* move one species to another genus in the revision only *)
      let sp = List.hd flora.Flora_gen.species_taxa in
      let target =
        List.find (fun g -> Classify.group_of db ~ctx:ctx2 sp <> Some g) flora.Flora_gen.genus_taxa
      in
      Classify.move db ~ctx:ctx2 ~item:sp ~group:target ~reason:"test move" ();
      Alcotest.(check (option int)) "moved in revision" (Some target)
        (Classify.group_of db ~ctx:ctx2 sp);
      Alcotest.(check bool) "original untouched" true
        (Classify.group_of db ~ctx:flora.Flora_gen.ctx sp <> Some target);
      (* traceability: the motivation is recorded on the edge *)
      match Database.incoming db ~context:ctx2 ~rel_name:S.circumscribes sp with
      | [ r ] ->
          Alcotest.(check string) "reason recorded" "test move"
            (V.as_string (Obj.get r "reason"))
      | _ -> Alcotest.fail "expected exactly one placement in revision")

let test_flora_generator_scale () =
  with_db (fun db ->
      let params =
        { Flora_gen.families = 2; genera_per_family = 3; species_per_genus = 4; specimens_per_species = 2; seed = 3 }
      in
      let flora = Flora_gen.generate db ~params () in
      Alcotest.(check int) "species taxa" 24 (List.length flora.Flora_gen.species_taxa);
      Alcotest.(check int) "specimens" 48 (List.length flora.Flora_gen.specimens);
      (* every species taxon has exactly 2 specimens *)
      List.iter
        (fun t ->
          Alcotest.(check int) "specimens per species" 2
            (OidSet.cardinal (Classify.specimens_of db ~ctx:flora.Flora_gen.ctx t)))
        flora.Flora_gen.species_taxa;
      (* derivation runs over a generated family without error *)
      let root = List.hd flora.Flora_gen.root_taxa in
      let assignments = Derivation.derive db ~ctx:flora.Flora_gen.ctx ~root () in
      Alcotest.(check bool) "derivation covers the tree" true (List.length assignments >= 13))

(* --- ICBN rules -------------------------------------------------------------------- *)

let with_rules f =
  with_db (fun db ->
      let engine = Prules.Engine.create db in
      Icbn.install engine;
      f db engine)

let test_icbn_family_suffix () =
  with_rules (fun db _ ->
      ignore (Nomen.create_name db ~epithet:"Rosaceae" ~rank:Rank.Familia ());
      ignore (Nomen.create_name db ~epithet:"Palmae" ~rank:Rank.Familia ()) (* exception *);
      match Nomen.create_name db ~epithet:"Rosa" ~rank:Rank.Familia () with
      | exception Prules.Rule.Violation _ -> ()
      | _ -> Alcotest.fail "family without -aceae should be rejected")

let test_icbn_capitalisation () =
  with_rules (fun db _ ->
      ignore (Nomen.create_name db ~epithet:"Apium" ~rank:Rank.Genus ());
      ignore (Nomen.create_name db ~epithet:"repens" ~rank:Rank.Species ());
      (match Nomen.create_name db ~epithet:"apium" ~rank:Rank.Genus () with
      | exception Prules.Rule.Violation _ -> ()
      | _ -> Alcotest.fail "lowercase genus should be rejected");
      match Nomen.create_name db ~epithet:"Repens" ~rank:Rank.Species () with
      | exception Prules.Rule.Violation _ -> ()
      | _ -> Alcotest.fail "capitalised species epithet should be rejected")

let test_icbn_single_word () =
  with_rules (fun db _ ->
      ignore (Nomen.create_name db ~epithet:"Uva-ursi" ~rank:Rank.Genus ()) (* hyphen ok at genus *);
      match Nomen.create_name db ~epithet:"two words" ~rank:Rank.Species () with
      | exception Prules.Rule.Violation _ -> ()
      | _ -> Alcotest.fail "multi-word epithet should be rejected")

let test_icbn_unique_holotype () =
  with_rules (fun db _ ->
      let n = Nomen.create_name db ~epithet:"unica" ~rank:Rank.Species () in
      let s1 = Nomen.create_specimen db () in
      let s2 = Nomen.create_specimen db () in
      ignore (Nomen.set_type db ~name:n ~target:s1 ~kind:"holotype");
      ignore (Nomen.set_type db ~name:n ~target:s2 ~kind:"isotype") (* many isotypes fine *);
      match Nomen.set_type db ~name:n ~target:s2 ~kind:"holotype" with
      | exception Prules.Rule.Violation _ -> ()
      | _ -> Alcotest.fail "second holotype should be rejected")

let test_icbn_placement_ranks () =
  with_rules (fun db _ ->
      let g = Nomen.create_name db ~epithet:"Apium" ~rank:Rank.Genus () in
      let s = Nomen.create_name db ~epithet:"repens" ~rank:Rank.Species () in
      ignore (Database.link db S.placed_in ~origin:s ~destination:g) (* fine *);
      match Database.link db S.placed_in ~origin:g ~destination:s with
      | exception Prules.Rule.Violation _ -> ()
      | _ -> Alcotest.fail "genus placed in species should be rejected")

let test_icbn_circumscription_ranks () =
  with_rules (fun db _ ->
      let ctx = Classify.create_classification db "r" in
      let g = Classify.create_taxon db ~rank:Rank.Genus () in
      let s = Classify.create_taxon db ~rank:Rank.Species () in
      ignore (Classify.circumscribe db ~ctx ~group:g ~item:s ());
      match Classify.circumscribe db ~ctx ~group:s ~item:g () with
      | exception Prules.Rule.Violation _ -> ()
      | _ -> Alcotest.fail "species containing genus should be rejected")

let test_icbn_type_existence_warns () =
  with_rules (fun db engine ->
      Database.begin_tx db;
      ignore (Nomen.create_name db ~epithet:"sine" ~rank:Rank.Species ());
      Database.commit db;
      Alcotest.(check bool) "warning for untypified name" true
        (List.exists
           (fun (rule, _) -> rule = "icbn_type_existence")
           (Prules.Engine.warnings engine)))

(* --- infraspecific names (trinomials) ---------------------------------- *)

let test_trinomial_rendering () =
  with_db (fun db ->
      let l = Nomen.create_author db ~name:"L" ~abbreviation:"L." in
      let apium = Nomen.create_name db ~epithet:"Apium" ~rank:Rank.Genus ~year:1753 ~author:l () in
      let grav =
        Nomen.create_name db ~epithet:"graveolens" ~rank:Rank.Species ~year:1753 ~author:l
          ~placed_in:apium ()
      in
      let dulce =
        Nomen.create_name db ~epithet:"dulce" ~rank:Rank.Varietas ~year:1768 ~author:l
          ~placed_in:grav ()
      in
      Alcotest.(check string) "trinomial" "Apium graveolens var. dulce L."
        (Nomen.full_name db dulce))

let test_infraspecific_derivation () =
  with_db (fun db ->
      (* a variety group under a species: derivation must anchor its
         combination on the derived SPECIES name, not the genus *)
      let l = Nomen.create_author db ~name:"L" ~abbreviation:"L." in
      let genus_n = Nomen.create_name db ~epithet:"Apium" ~rank:Rank.Genus ~year:1753 ~author:l () in
      let sp_n =
        Nomen.create_name db ~epithet:"graveolens" ~rank:Rank.Species ~year:1753 ~author:l
          ~placed_in:genus_n ()
      in
      let var_spec = Nomen.create_specimen db ~collected:(V.date 1760) () in
      let sp_spec = Nomen.create_specimen db ~collected:(V.date 1750) () in
      ignore (Nomen.set_type db ~name:sp_n ~target:sp_spec ~kind:"holotype");
      ignore (Nomen.set_type db ~name:genus_n ~target:sp_n ~kind:"holotype");
      let ctx = Classify.create_classification db "infra" in
      let g = Classify.create_taxon db ~rank:Rank.Genus () in
      let s = Classify.create_taxon db ~rank:Rank.Species () in
      let v = Classify.create_taxon db ~rank:Rank.Varietas () in
      Classify.set_working_name db ~taxon:v "dulce";
      ignore (Classify.circumscribe db ~ctx ~group:g ~item:s ());
      ignore (Classify.circumscribe db ~ctx ~group:s ~item:v ());
      ignore (Classify.circumscribe db ~ctx ~group:s ~item:sp_spec ());
      ignore (Classify.circumscribe db ~ctx ~group:v ~item:var_spec ());
      let assignments = Derivation.derive db ~ctx ~root:g ~year:2003 () in
      let av = List.find (fun a -> a.Derivation.taxon = v) assignments in
      match av.Derivation.outcome with
      | Derivation.New_name { name; _ } ->
          Alcotest.(check string) "epithet from working name" "dulce" (Nomen.epithet db name);
          (* the variety's placement anchor is the derived species name *)
          let as_ = List.find (fun a -> a.Derivation.taxon = s) assignments in
          let species_name = Derivation.name_of_outcome as_.Derivation.outcome in
          Alcotest.(check (option int)) "anchored on species" (Some species_name)
            (Nomen.placement db name);
          Alcotest.(check string) "renders as a trinomial" "Apium graveolens var. dulce"
            (Nomen.full_name db name)
      | _ -> Alcotest.fail "expected a new infraspecific name")

(* --- historical classifications (thesis 7.1.2) --------------------------- *)

let test_historical_from_placements () =
  with_db (fun db ->
      let l = Nomen.create_author db ~name:"L" ~abbreviation:"L." in
      let apium = Nomen.create_name db ~epithet:"Apium" ~rank:Rank.Genus ~year:1753 ~author:l () in
      let grav =
        Nomen.create_name db ~epithet:"graveolens" ~rank:Rank.Species ~year:1753 ~author:l
          ~placed_in:apium ()
      in
      let inund =
        Nomen.create_name db ~epithet:"inundatum" ~rank:Rank.Species ~year:1753 ~author:l
          ~placed_in:apium ()
      in
      let h = Historical.from_placements db ~names:[ apium; grav; inund ] ~classification_name:"Linnaeus 1753" () in
      Alcotest.(check int) "one root" 1 (List.length h.Historical.roots);
      let root = List.hd h.Historical.roots in
      Alcotest.(check int) "two species below genus" 2
        (List.length (Classify.subtaxa db ~ctx:h.Historical.ctx root));
      (* taxa carry ascribed names; no specimens -> no derivation *)
      Alcotest.(check (option int)) "ascribed name" (Some apium)
        (Classify.ascribed_name_of db root);
      Alcotest.(check bool) "no derivation without specimens" false
        (Historical.supports_derivation db h);
      (* a name placed outside the set becomes a root *)
      let other_genus = Nomen.create_name db ~epithet:"Daucus" ~rank:Rank.Genus ~year:1753 ~author:l () in
      let carota =
        Nomen.create_name db ~epithet:"carota" ~rank:Rank.Species ~year:1753 ~author:l
          ~placed_in:other_genus ()
      in
      let h2 = Historical.from_placements db ~names:[ carota ] () in
      Alcotest.(check int) "orphan placement is a root" 1 (List.length h2.Historical.roots))

let test_historical_with_types_supports_derivation () =
  with_db (fun db ->
      let n = Nomen.create_name db ~epithet:"Apium" ~rank:Rank.Genus () in
      let h = Historical.from_placements db ~names:[ n ] () in
      (* attach a specimen under the historical taxon: derivation becomes possible *)
      let s = Nomen.create_specimen db () in
      let _, taxon = List.hd h.Historical.taxa in
      ignore (Classify.circumscribe db ~ctx:h.Historical.ctx ~group:taxon ~item:s ());
      Alcotest.(check bool) "derivation now possible" true
        (Historical.supports_derivation db h))

let test_historical_name_comparison () =
  with_db (fun db ->
      let l = Nomen.create_author db ~name:"L" ~abbreviation:"L." in
      let apium = Nomen.create_name db ~epithet:"Apium" ~rank:Rank.Genus ~year:1753 ~author:l () in
      let grav =
        Nomen.create_name db ~epithet:"graveolens" ~rank:Rank.Species ~year:1753 ~author:l
          ~placed_in:apium ()
      in
      let h = Historical.from_placements db ~names:[ apium; grav ] () in
      (* a modern classification using the same name (ascribed) *)
      let ctx2 = Classify.create_classification db "modern" in
      let t = Classify.create_taxon db ~rank:Rank.Species () in
      ignore (Classify.ascribe_name db ~taxon:t ~name:grav);
      let s = Nomen.create_specimen db () in
      ignore (Classify.circumscribe db ~ctx:ctx2 ~group:t ~item:s ());
      let matches = Historical.compare_by_name db h ~other_ctx:ctx2 in
      Alcotest.(check bool) "name-based match found" true
        (List.exists (fun (_, b) -> b = t) matches))

(* --- extra ICBN rules ---------------------------------------------------- *)

let test_icbn_tautonym () =
  with_rules (fun db _ ->
      let linaria_g = Nomen.create_name db ~epithet:"Linaria" ~rank:Rank.Genus () in
      (* valid placement *)
      let vulgaris = Nomen.create_name db ~epithet:"vulgaris" ~rank:Rank.Species () in
      ignore (Database.link db S.placed_in ~origin:vulgaris ~destination:linaria_g);
      (* tautonym rejected *)
      let linaria_s = Nomen.create_name db ~epithet:"linaria" ~rank:Rank.Species () in
      match Database.link db S.placed_in ~origin:linaria_s ~destination:linaria_g with
      | exception Prules.Rule.Violation _ -> ()
      | _ -> Alcotest.fail "tautonym should be rejected")

let test_icbn_combination_year_warns () =
  with_rules (fun db engine ->
      let g = Nomen.create_name db ~epithet:"Novus" ~rank:Rank.Genus ~year:1900 () in
      let s = Nomen.create_name db ~epithet:"ante" ~rank:Rank.Species ~year:1850 () in
      ignore (Database.link db S.placed_in ~origin:s ~destination:g);
      Alcotest.(check bool) "year anomaly warned" true
        (List.exists (fun (r, _) -> r = "icbn_combination_year") (Prules.Engine.warnings engine)))

(* --- classification comparison (Pgraph.Compare) --------------------------- *)

let test_compare_classifications () =
  with_db (fun db ->
      let s1 = Nomen.create_specimen db () in
      let s2 = Nomen.create_specimen db () in
      let s3 = Nomen.create_specimen db () in
      let s4 = Nomen.create_specimen db () in
      let ctx1 = Classify.create_classification db "a" in
      let ctx2 = Classify.create_classification db "b" in
      let mk r = Classify.create_taxon db ~rank:r () in
      (* a: {s1 s2} {s3} ; b: {s1 s2} {s3 -> moved with s4} *)
      let a1 = mk Rank.Species and a2 = mk Rank.Species in
      let b1 = mk Rank.Species and b2 = mk Rank.Species in
      List.iter (fun (g, i) -> ignore (Classify.circumscribe db ~ctx:ctx1 ~group:g ~item:i ()))
        [ (a1, s1); (a1, s2); (a2, s3) ];
      List.iter (fun (g, i) -> ignore (Classify.circumscribe db ~ctx:ctx2 ~group:g ~item:i ()))
        [ (b1, s1); (b1, s2); (b2, s3); (b2, s4) ];
      let r =
        Pgraph.Compare.compare_contexts db ~rel:S.circumscribes ~ctx_a:ctx1 ~ctx_b:ctx2 ()
      in
      Alcotest.(check int) "only in b" 1 (Database.OidSet.cardinal r.Pgraph.Compare.only_in_b);
      Alcotest.(check int) "only in a" 0 (Database.OidSet.cardinal r.Pgraph.Compare.only_in_a);
      (* s1, s2 agree (same leafsets); s3 moved to a group with different leafset *)
      Alcotest.(check int) "moved" 1 (List.length r.Pgraph.Compare.moved);
      Alcotest.(check bool) "agreeing groups found" true
        (List.mem (a1, b1) r.Pgraph.Compare.agreeing_groups);
      Alcotest.(check bool) "agreement fraction" true
        (abs_float (r.Pgraph.Compare.agreement -. (2. /. 3.)) < 1e-9))

let () =
  Alcotest.run "taxonomy"
    [
      ("ranks", [ Alcotest.test_case "order & properties" `Quick test_rank_order ]);
      ( "nomenclature",
        [
          Alcotest.test_case "name rendering" `Quick test_name_rendering;
          Alcotest.test_case "typification & roles" `Quick test_typification;
        ] );
      ( "classification",
        [
          Alcotest.test_case "circumscription recursion" `Quick test_circumscription_recursion;
          Alcotest.test_case "exclusive within classification" `Quick
            test_exclusive_within_classification;
        ] );
      ( "derivation",
        [
          Alcotest.test_case "Apium/Heliosciadium (fig. 3)" `Quick test_derivation_apium;
          Alcotest.test_case "existing vs new combination" `Quick
            test_derivation_existing_combination;
          Alcotest.test_case "elects types" `Quick test_derivation_elects_types;
        ] );
      ( "multiple classifications",
        [
          Alcotest.test_case "shapes scenario (fig. 4)" `Quick test_shapes_multiple_classifications;
          Alcotest.test_case "homotypic synonyms" `Quick test_homotypic_synonyms;
          Alcotest.test_case "revision workflow" `Quick test_revision_workflow;
          Alcotest.test_case "flora generator" `Quick test_flora_generator_scale;
        ] );
      ( "historical",
        [
          Alcotest.test_case "from placements" `Quick test_historical_from_placements;
          Alcotest.test_case "with types supports derivation" `Quick
            test_historical_with_types_supports_derivation;
          Alcotest.test_case "name comparison" `Quick test_historical_name_comparison;
        ] );
      ( "infraspecific",
        [
          Alcotest.test_case "trinomial rendering" `Quick test_trinomial_rendering;
          Alcotest.test_case "infraspecific derivation" `Quick test_infraspecific_derivation;
          Alcotest.test_case "compare classifications" `Quick test_compare_classifications;
        ] );
      ( "icbn rules",
        [
          Alcotest.test_case "family suffix" `Quick test_icbn_family_suffix;
          Alcotest.test_case "capitalisation" `Quick test_icbn_capitalisation;
          Alcotest.test_case "single word" `Quick test_icbn_single_word;
          Alcotest.test_case "unique holotype" `Quick test_icbn_unique_holotype;
          Alcotest.test_case "placement ranks" `Quick test_icbn_placement_ranks;
          Alcotest.test_case "circumscription ranks" `Quick test_icbn_circumscription_ranks;
          Alcotest.test_case "type existence warns" `Quick test_icbn_type_existence_warns;
          Alcotest.test_case "tautonym" `Quick test_icbn_tautonym;
          Alcotest.test_case "combination year warns" `Quick test_icbn_combination_year_warns;
        ] );
    ]
