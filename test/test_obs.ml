(* Tests for the observability layer (lib/obs): metric registry
   semantics, histogram bucket boundaries, tracer ring-buffer
   wraparound, Prometheus text-exposition grammar, the shared JSON
   escaper, and an overhead smoke check. *)

open Pmodel
module M = Pobs.Metrics
module Tr = Pobs.Trace
module J = Pobs.Json

let tmp_counter = ref 0

let tmp_path () =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "prom_obs_%d_%d.db" (Unix.getpid ()) !tmp_counter)

let cleanup path =
  if Sys.file_exists path then Sys.remove path;
  if Sys.file_exists (path ^ ".journal") then Sys.remove (path ^ ".journal")

let with_db f =
  let path = tmp_path () in
  let db = Database.open_ path in
  Fun.protect
    ~finally:(fun () ->
      (try Database.close db with _ -> ());
      cleanup path)
    (fun () -> f db)

(* --- counters under interleaved transactions/aborts ------------------- *)

(* The process-wide handles are idempotent: re-registering by name
   returns the live instrument the storage layer increments. *)
let c_commits = M.counter "pdb_store_tx_commits_total" ~help:""
let c_aborts = M.counter "pdb_store_tx_aborts_total" ~help:""
let c_pager_commits = M.counter "pdb_pager_commits_total" ~help:""
let c_pager_aborts = M.counter "pdb_pager_aborts_total" ~help:""

let test_counter_monotonic () =
  let module S = Pstore.Store in
  let path = tmp_path () in
  let s = S.open_ path in
  Fun.protect
    ~finally:(fun () ->
      (try S.close s with _ -> ());
      cleanup path)
    (fun () ->
      let commits0 = M.counter_value c_commits and aborts0 = M.counter_value c_aborts in
      let last = ref (commits0, aborts0) in
      let observe () =
        let now = (M.counter_value c_commits, M.counter_value c_aborts) in
        let lc, la = !last and nc, na = now in
        if nc < lc || na < la then Alcotest.fail "counter went backwards";
        last := now
      in
      for i = 1 to 20 do
        S.begin_tx s;
        S.put s ~oid:(S.fresh_oid s) (Printf.sprintf "payload-%d" i);
        if i mod 3 = 0 then S.abort s else S.commit s;
        observe ()
      done;
      let committed = 20 - (20 / 3) and aborted = 20 / 3 in
      Alcotest.(check int)
        "tx commits counted" committed
        (int_of_float (M.counter_value c_commits -. commits0));
      Alcotest.(check int)
        "tx aborts counted" aborted
        (int_of_float (M.counter_value c_aborts -. aborts0));
      (* the pager-level mirrors moved at least as much *)
      if M.counter_value c_pager_commits < M.counter_value c_commits then
        Alcotest.fail "pager commits behind store commits";
      if M.counter_value c_pager_aborts < float_of_int aborted then
        Alcotest.fail "pager aborts behind store aborts")

let test_counter_api () =
  let reg = M.create () in
  let c = M.counter ~registry:reg "t_total" ~help:"h" in
  M.inc c;
  M.addi c 4;
  Alcotest.(check (float 0.0)) "inc+addi" 5.0 (M.counter_value c);
  (match M.add c (-1.) with
  | () -> Alcotest.fail "negative add must be rejected"
  | exception Invalid_argument _ -> ());
  (* idempotent registration returns the same handle *)
  let c' = M.counter ~registry:reg "t_total" ~help:"other" in
  M.inc c';
  Alcotest.(check (float 0.0)) "same handle" 6.0 (M.counter_value c);
  (* disabled guard: mutations become no-ops *)
  M.enabled := false;
  M.inc c;
  M.enabled := true;
  Alcotest.(check (float 0.0)) "guarded" 6.0 (M.counter_value c)

(* --- histogram bucket boundaries --------------------------------------- *)

let test_histogram_buckets () =
  let reg = M.create () in
  let h = M.histogram ~registry:reg ~buckets:[| 10.; 20.; 30. |] "h_ns" ~help:"h" in
  List.iter (M.observe h) [ 5.; 10.; 10.5; 20.; 25.; 30.; 31. ];
  (* le semantics: a value equal to a bound lands in that bound's bucket *)
  Alcotest.(check (array int)) "per-bucket counts" [| 2; 2; 2; 1 |] (M.hist_counts h);
  Alcotest.(check int) "total" 7 (M.hist_total h);
  Alcotest.(check (float 1e-9)) "sum" 131.5 (M.hist_sum h);
  (match M.histogram ~registry:reg ~buckets:[| 10.; 10. |] "bad_ns" ~help:"" with
  | _ -> Alcotest.fail "non-ascending buckets must be rejected"
  | exception Invalid_argument _ -> ())

(* --- tracer ring wraparound --------------------------------------------- *)

let test_trace_wraparound () =
  Tr.set_capacity 8;
  Tr.clear ();
  Tr.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Tr.enabled := false;
      Tr.set_capacity 512;
      Tr.clear ())
    (fun () ->
      for i = 1 to 10 do
        Tr.with_span "outer" (fun () ->
            Tr.with_span "inner"
              ~attrs:[ ("i", string_of_int i) ]
              (fun () -> ignore (Sys.opaque_identity (i * i))))
      done;
      Alcotest.(check int) "recorded" 20 (Tr.recorded ());
      Alcotest.(check int) "dropped" 12 (Tr.dropped ());
      let spans = Tr.spans () in
      Alcotest.(check int) "ring holds capacity" 8 (List.length spans);
      let by_id = Hashtbl.create 8 in
      List.iter (fun (s : Tr.span) -> Hashtbl.replace by_id s.Tr.id s) spans;
      List.iter
        (fun (s : Tr.span) ->
          (* parent links stay valid after wraparound: 0 (root) or a
             strictly earlier id, never a dangling forward reference *)
          if s.Tr.parent <> 0 then begin
            if s.Tr.parent >= s.Tr.id then Alcotest.fail "parent id not earlier than child";
            match Hashtbl.find_opt by_id s.Tr.parent with
            | None -> () (* parent evicted by wraparound: allowed *)
            | Some p ->
                (* a surviving parent's interval encloses the child *)
                if p.Tr.start_ns > s.Tr.start_ns then Alcotest.fail "child starts before parent";
                if
                  p.Tr.start_ns + p.Tr.dur_ns < s.Tr.start_ns + s.Tr.dur_ns
                then Alcotest.fail "child ends after parent"
          end)
        spans;
      (* inner spans finish first, so the newest span is an "outer" with
         a live link to its (already recorded) "inner" child's parent *)
      let inners = List.filter (fun (s : Tr.span) -> s.Tr.name = "inner") spans in
      Alcotest.(check bool) "inner spans survive" true (inners <> []);
      List.iter
        (fun (s : Tr.span) ->
          if not (List.mem_assoc "i" s.Tr.attrs) then Alcotest.fail "attr lost")
        inners;
      (* rendering never raises, and reports the drop *)
      let txt = Tr.to_text () in
      Alcotest.(check bool) "drop note" true
        (String.length txt > 0
        &&
        let needle = "dropped" in
        let n = String.length txt and m = String.length needle in
        let rec go i = i + m <= n && (String.sub txt i m = needle || go (i + 1)) in
        go 0))

let test_trace_disabled_is_free () =
  Tr.clear ();
  Alcotest.(check bool) "tracing default off" false !Tr.enabled;
  let r = Tr.with_span "nope" (fun () -> 42) in
  Alcotest.(check int) "passthrough" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (Tr.recorded ())

(* --- Prometheus text-format grammar ------------------------------------- *)

(* A strict line-by-line parser for the exposition format (version
   0.0.4): HELP/TYPE headers, sample lines with optional labels, label
   values with the three escapes, float values.  Raises Alcotest.fail
   with the offending line. *)

let is_name_start c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false

let is_name_char c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false

let is_label_char c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false

let valid_value (s : string) =
  s = "+Inf" || s = "-Inf" || s = "NaN"
  || match float_of_string_opt s with Some _ -> true | None -> false

type sample = { s_name : string; s_labels : (string * string) list; s_value : string }

type line = L_help of string | L_type of string * string | L_sample of sample

let parse_line (line : string) : line =
  let bad reason = Alcotest.fail (Printf.sprintf "bad exposition line (%s): %S" reason line) in
  let n = String.length line in
  if n = 0 then bad "empty";
  if String.length line >= 7 && String.sub line 0 7 = "# HELP " then begin
    (match String.index_from_opt line 7 ' ' with
    | Some i -> L_help (String.sub line 7 (i - 7))
    | None -> L_help (String.sub line 7 (n - 7)))
  end
  else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
    match String.split_on_char ' ' line with
    | [ "#"; "TYPE"; name; kind ] ->
        if not (List.mem kind [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ]) then
          bad "unknown type";
        L_type (name, kind)
    | _ -> bad "malformed TYPE"
  end
  else if line.[0] = '#' then bad "unknown comment"
  else begin
    let i = ref 0 in
    while !i < n && is_name_char line.[!i] do incr i done;
    let name = String.sub line 0 !i in
    if name = "" || not (is_name_start name.[0]) then bad "metric name";
    let labels = ref [] in
    if !i < n && line.[!i] = '{' then begin
      incr i;
      let parsing = ref true in
      while !parsing do
        let st = !i in
        while !i < n && is_label_char line.[!i] do incr i done;
        let lname = String.sub line st (!i - st) in
        if lname = "" then bad "label name";
        if !i >= n || line.[!i] <> '=' then bad "expected =";
        incr i;
        if !i >= n || line.[!i] <> '"' then bad "expected opening quote";
        incr i;
        let b = Buffer.create 16 in
        let closed = ref false in
        while not !closed do
          if !i >= n then bad "unterminated label value";
          (match line.[!i] with
          | '\\' ->
              if !i + 1 >= n then bad "dangling escape";
              (match line.[!i + 1] with
              | '\\' -> Buffer.add_char b '\\'
              | '"' -> Buffer.add_char b '"'
              | 'n' -> Buffer.add_char b '\n'
              | _ -> bad "unknown escape");
              i := !i + 2
          | '"' ->
              closed := true;
              incr i
          | c ->
              Buffer.add_char b c;
              incr i)
        done;
        labels := (lname, Buffer.contents b) :: !labels;
        if !i >= n then bad "unterminated label set";
        (match line.[!i] with
        | ',' -> incr i
        | '}' ->
            incr i;
            parsing := false
        | _ -> bad "expected , or }")
      done
    end;
    if !i >= n || line.[!i] <> ' ' then bad "expected space before value";
    incr i;
    let value = String.sub line !i (n - !i) in
    if not (valid_value value) then bad "value not a float";
    L_sample { s_name = name; s_labels = List.rev !labels; s_value = value }
  end

(* Validate a full exposition document: every line parses, every sample
   belongs to a declared family (histogram samples via the
   _bucket/_sum/_count suffixes), cumulative buckets never decrease and
   the +Inf bucket equals _count.  Returns the family table. *)
let validate_exposition (text : string) : (string, string) Hashtbl.t =
  if text = "" || text.[String.length text - 1] <> '\n' then
    Alcotest.fail "exposition must end with a newline";
  let lines = String.split_on_char '\n' text in
  let lines = List.filteri (fun i l -> not (l = "" && i = List.length lines - 1)) lines in
  let types = Hashtbl.create 64 in
  let family_of (s : sample) : string =
    let strip suffix name =
      let ls = String.length suffix and ln = String.length name in
      if ln > ls && String.sub name (ln - ls) ls = suffix then Some (String.sub name 0 (ln - ls))
      else None
    in
    let candidates =
      List.filter_map
        (fun x -> x)
        [
          (match strip "_bucket" s.s_name with
          | Some f when Hashtbl.find_opt types f = Some "histogram" -> Some f
          | _ -> None);
          (match strip "_sum" s.s_name with
          | Some f when Hashtbl.find_opt types f = Some "histogram" -> Some f
          | _ -> None);
          (match strip "_count" s.s_name with
          | Some f when Hashtbl.find_opt types f = Some "histogram" -> Some f
          | _ -> None);
          (if Hashtbl.mem types s.s_name then Some s.s_name else None);
        ]
    in
    match candidates with
    | f :: _ -> f
    | [] -> Alcotest.fail (Printf.sprintf "sample %s has no TYPE declaration" s.s_name)
  in
  (* histogram bookkeeping keyed by (family, labels-minus-le) *)
  let buckets : (string * (string * string) list, float list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let counts : (string * (string * string) list, float) Hashtbl.t = Hashtbl.create 32 in
  let inf_buckets : (string * (string * string) list, float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun l ->
      match parse_line l with
      | L_help _ -> ()
      | L_type (name, kind) ->
          if Hashtbl.mem types name then Alcotest.fail ("duplicate TYPE for " ^ name);
          Hashtbl.replace types name kind
      | L_sample s -> (
          let fam = family_of s in
          let kind = Hashtbl.find types fam in
          match kind with
          | "histogram" ->
              let base = List.remove_assoc "le" s.s_labels in
              let key = (fam, base) in
              let v = float_of_string (match s.s_value with "+Inf" -> "infinity" | x -> x) in
              if
                String.length s.s_name > 7
                && String.sub s.s_name (String.length s.s_name - 7) 7 = "_bucket"
              then begin
                let le =
                  match List.assoc_opt "le" s.s_labels with
                  | Some le -> le
                  | None -> Alcotest.fail "bucket sample without le label"
                in
                (match Hashtbl.find_opt buckets key with
                | Some r ->
                    (match !r with
                    | prev :: _ when v < prev ->
                        Alcotest.fail ("bucket counts not cumulative in " ^ fam)
                    | _ -> ());
                    r := v :: !r
                | None -> Hashtbl.replace buckets key (ref [ v ]));
                if le = "+Inf" then Hashtbl.replace inf_buckets key v
              end
              else if
                String.length s.s_name > 6
                && String.sub s.s_name (String.length s.s_name - 6) 6 = "_count"
              then Hashtbl.replace counts key v
          | _ ->
              if s.s_name <> fam then Alcotest.fail ("sample/family name mismatch: " ^ s.s_name)))
    lines;
  Hashtbl.iter
    (fun key count ->
      match Hashtbl.find_opt inf_buckets key with
      | Some inf ->
          if inf <> count then Alcotest.fail "histogram +Inf bucket != _count"
      | None -> Alcotest.fail "histogram without +Inf bucket")
    counts;
  types

let test_metrics_exposition_grammar () =
  with_db (fun db ->
      (* touch storage, query and rules so their instruments move *)
      ignore (Database.define_class db "Star" [ Meta.attr "name" Value.TString ]);
      ignore (Database.create db "Star" [ ("name", Value.VString "sun") ]);
      let engine = Prules.Engine.create db in
      Prules.Engine.add_rule engine
        (Prules.Rule.invariant "named" ~class_name:"Star" (fun _ o ->
             match Obj.get o "name" with Value.VString s -> s <> "" | _ -> false));
      ignore (Database.create db "Star" [ ("name", Value.VString "vega") ]);
      ignore (Pool_lang.Pool.query db "select s.name from Star s where s.name = 'sun'");
      let text = Pserver.Http_server.metrics_text db in
      let types = validate_exposition text in
      List.iter
        (fun (fam, kind) ->
          match Hashtbl.find_opt types fam with
          | Some k when k = kind -> ()
          | Some k ->
              Alcotest.fail (Printf.sprintf "family %s has kind %s, expected %s" fam k kind)
          | None -> Alcotest.fail ("family missing from /metrics: " ^ fam))
        [
          (* storage *)
          ("pdb_pager_commits_total", "counter");
          ("pdb_pager_cache_hits_total", "counter");
          ("pdb_pager_fsync_ns", "histogram");
          ("pdb_pager_pwrite_ns", "histogram");
          ("pdb_store_tx_commits_total", "counter");
          ("pdb_store_objects", "gauge");
          (* query *)
          ("pdb_queries_total", "counter");
          ("pdb_query_exec_ns", "histogram");
          ("pdb_plan_cache_misses_total", "counter");
          (* rules *)
          ("pdb_rule_firings_total", "counter");
          ("pdb_rule_violations_total", "counter");
          (* events *)
          ("pdb_events_emitted_total", "counter");
        ])

let test_exposition_escaping () =
  let reg = M.create () in
  let nasty = "he said \"hi\"\nthen C:\\path" in
  let c = M.counter ~registry:reg ~labels:[ ("q", nasty) ] "esc_total" ~help:"line1\nline2" in
  M.inc c;
  let text = M.expose ~registry:reg () in
  let types = validate_exposition text in
  Alcotest.(check (option string)) "family present" (Some "counter")
    (Hashtbl.find_opt types "esc_total");
  (* round-trip: the parser must recover the original label value *)
  let recovered = ref None in
  List.iter
    (fun l ->
      match parse_line l with
      | L_sample s when s.s_name = "esc_total" -> recovered := List.assoc_opt "q" s.s_labels
      | _ -> ())
    (List.filter (fun l -> l <> "") (String.split_on_char '\n' text));
  Alcotest.(check (option string)) "label round-trips" (Some nasty) !recovered

(* --- shared JSON escaper -------------------------------------------------- *)

let test_json_escaper () =
  Alcotest.(check string)
    "quotes and newlines" "{\"k\":\"a\\\"b\\nc\\\\d\"}"
    (J.to_string (J.Obj [ ("k", J.Str "a\"b\nc\\d") ]));
  Alcotest.(check string) "control chars" "\"x\\u0001\\ty\"" (J.to_string (J.Str "x\001\ty"));
  Alcotest.(check string) "non-finite floats are null" "[null,null]"
    (J.to_string (J.List [ J.Float Float.nan; J.Float Float.infinity ]));
  Alcotest.(check string) "integral floats stay compact" "2" (J.to_string (J.Float 2.0));
  (* Prometheus label escaping: exactly backslash, quote, newline *)
  Alcotest.(check string) "prom label escapes" "a\\\"b\\nc\\\\d\tz"
    (J.escape `Prom_label "a\"b\nc\\d\tz")

let test_stats_json_well_formed () =
  with_db (fun db ->
      ignore (Database.define_class db "Star" [ Meta.attr "name" Value.TString ]);
      ignore (Database.create db "Star" [ ("name", Value.VString "sun") ]);
      let body = Pserver.Http_server.stats_json db in
      (* body must contain the per-database storage keys and balance
         its braces (a cheap well-formedness check on top of the
         escaper tests above) *)
      let contains sub =
        let n = String.length body and m = String.length sub in
        let rec go i = i + m <= n && (String.sub body i m = sub || go (i + 1)) in
        go 0
      in
      List.iter
        (fun key ->
          if not (contains (Printf.sprintf "\"%s\"" key)) then
            Alcotest.fail ("stats JSON missing key " ^ key))
        [ "storage"; "objects"; "query"; "observability"; "slow_queries"; "metrics" ];
      let depth = ref 0 and in_str = ref false and esc = ref false in
      String.iter
        (fun c ->
          if !esc then esc := false
          else if !in_str then begin
            if c = '\\' then esc := true else if c = '"' then in_str := false
          end
          else
            match c with
            | '"' -> in_str := true
            | '{' | '[' -> incr depth
            | '}' | ']' -> decr depth
            | _ -> ())
        body;
      Alcotest.(check int) "balanced braces" 0 !depth;
      Alcotest.(check bool) "closed strings" false !in_str)

(* --- overhead smoke -------------------------------------------------------- *)

let test_overhead_smoke () =
  let module S = Pstore.Store in
  let workload () =
    let path = tmp_path () in
    let s = S.open_ path in
    let payload = String.make 64 'c' in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to 50 do
      S.with_tx s (fun () -> S.put s ~oid:(S.fresh_oid s) payload)
    done;
    let dt = Unix.gettimeofday () -. t0 in
    S.close s;
    cleanup path;
    dt
  in
  ignore (workload ());
  let median l = List.nth (List.sort compare l) (List.length l / 2) in
  let sample enabled = List.init 3 (fun _ -> M.enabled := enabled; workload ()) in
  Fun.protect
    ~finally:(fun () -> M.enabled := true)
    (fun () ->
      let off = median (sample false) in
      let on = median (sample true) in
      (* generous CI-safe bound — the bench gate enforces the real <5%
         budget; this only catches pathological regressions like an
         accidental syscall or allocation per counter increment *)
      if on > (off *. 2.5) +. 0.005 then
        Alcotest.fail
          (Printf.sprintf "metrics-on overhead pathological: off %.6fs on %.6fs" off on))

(* --- slow-query log: configurable threshold --------------------------- *)

let test_slowlog_threshold () =
  with_db (fun db ->
      ignore (Database.define_class db "Star" [ Meta.attr "name" Value.TString ]);
      ignore (Database.create db "Star" [ ("name", Value.VString "sun") ]);
      Fun.protect
        ~finally:(fun () ->
          Pobs.Slowlog.set_threshold_ns Pobs.Slowlog.default_threshold_ns;
          Pobs.Slowlog.clear ())
        (fun () ->
          Pobs.Slowlog.clear ();
          (* a prohibitive threshold logs nothing *)
          Pobs.Slowlog.set_threshold_ms 60_000.;
          ignore (Pool_lang.Pool.query db "select s.name from Star s");
          Alcotest.(check int) "fast query not logged" 0
            (List.length (Pobs.Slowlog.entries ()));
          (* threshold 0 — "log every query", what pdb --slowlog-ms 0 sets *)
          Pobs.Slowlog.set_threshold_ns 0;
          let q = "select s.name from Star s where s.name = 'sun'" in
          ignore (Pool_lang.Pool.query db q);
          (match Pobs.Slowlog.entries () with
          | [ e ] ->
              Alcotest.(check string) "entry names the query" q e.Pobs.Slowlog.query;
              Alcotest.(check bool) "duration recorded" true (e.Pobs.Slowlog.dur_ns >= 0)
          | es -> Alcotest.failf "expected 1 slow entry, got %d" (List.length es));
          (* negative values clamp to "log everything" *)
          Pobs.Slowlog.set_threshold_ns (-5);
          Alcotest.(check int) "negative clamps to zero" 0 !Pobs.Slowlog.threshold_ns;
          (* the ms convenience setter feeds the same knob *)
          Pobs.Slowlog.set_threshold_ms 2.5;
          Alcotest.(check int) "ms setter converts" 2_500_000 !Pobs.Slowlog.threshold_ns))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter monotonicity under tx/abort" `Quick
            test_counter_monotonic;
          Alcotest.test_case "counter api + guard" `Quick test_counter_api;
          Alcotest.test_case "histogram bucket boundaries" `Quick test_histogram_buckets;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring wraparound keeps parent links" `Quick test_trace_wraparound;
          Alcotest.test_case "disabled tracer records nothing" `Quick
            test_trace_disabled_is_free;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "/metrics obeys the text-format grammar" `Quick
            test_metrics_exposition_grammar;
          Alcotest.test_case "label escaping round-trips" `Quick test_exposition_escaping;
          Alcotest.test_case "shared JSON escaper" `Quick test_json_escaper;
          Alcotest.test_case "/stats JSON well-formed" `Quick test_stats_json_well_formed;
        ] );
      ( "slowlog",
        [ Alcotest.test_case "threshold is configurable" `Quick test_slowlog_threshold ] );
      ( "overhead",
        [ Alcotest.test_case "metrics-on vs metrics-off smoke" `Quick test_overhead_smoke ] );
    ]
