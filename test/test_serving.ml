(* Snapshot-serving tests: the reader-domain pool behind `pdb serve
   --readers` and the read-your-writes token protocol around it.

   Covered here, per the serving design:
   - LSN-token monotonicity: a write's X-PDB-LSN presented back as
     X-PDB-Min-LSN is never served stale, even when the background
     refresh cadence is effectively disabled;
   - the refresh-lag bound: an untokened read observes a write within
     the configured lag (plus scheduling slack);
   - old-generation release: stopping the server drops every pinned
     snapshot version back to zero;
   - concurrent writers batch through the group-commit writer (the
     /stats serving.group counters prove shared fsync cycles);
   - the pool survives a reader job raising (direct API and HTTP);
   - the slowloris guards: oversized header blocks (431) and trickled
     headers past the wall-clock deadline (408).

   Same raw-socket style as test_server.ml: the server runs on its own
   thread on an ephemeral port and every client is a hand-rolled
   [Unix] TCP connection so the tests control the exact bytes. *)

open Pmodel

let tmp_counter = ref 0

let tmp_path () =
  incr tmp_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "prom_serving_%d_%d.db" (Unix.getpid ()) !tmp_counter)

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; path ^ ".journal" ]

(* --- raw-socket HTTP client -------------------------------------------- *)

let recv_all fd =
  let b = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes b chunk 0 n;
        go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  go ();
  Buffer.contents b

let send_str fd s =
  let pos = ref 0 and len = String.length s in
  let buf = Bytes.unsafe_of_string s in
  while !pos < len do
    pos := !pos + Unix.write fd buf !pos (len - !pos)
  done

let talk_raw port raw =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      send_str fd raw;
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      recv_all fd)

let get ?(headers = []) port target =
  let hs =
    String.concat "" (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
  in
  talk_raw port (Printf.sprintf "GET %s HTTP/1.0\r\nHost: localhost\r\n%s\r\n" target hs)

let post port target =
  talk_raw port (Printf.sprintf "POST %s HTTP/1.0\r\nHost: localhost\r\n\r\n" target)

let status_of response =
  match String.index_opt response '\r' with
  | Some i -> String.sub response 0 i
  | None -> response

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None else if String.sub hay i nn = needle then Some i else go (i + 1)
  in
  go 0

let contains hay needle = find_sub hay needle <> None

let body_of response =
  match find_sub response "\r\n\r\n" with
  | Some i -> String.sub response (i + 4) (String.length response - i - 4)
  | None -> ""

(* Value of header [name] in [response] (case-sensitive match on the
   name the server actually emits). *)
let header_of response name =
  let head =
    match find_sub response "\r\n\r\n" with
    | Some i -> String.sub response 0 i
    | None -> response
  in
  let prefix = name ^ ": " in
  List.find_map
    (fun line ->
      if String.length line > String.length prefix
         && String.sub line 0 (String.length prefix) = prefix
      then Some (String.sub line (String.length prefix) (String.length line - String.length prefix))
      else None)
    (String.split_on_char '\n' (String.concat "" (String.split_on_char '\r' head)))

let lsn_of response =
  match Option.bind (header_of response "X-PDB-LSN") int_of_string_opt with
  | Some l -> l
  | None -> Alcotest.failf "no X-PDB-LSN header in: %s" (status_of response)

(* First integer following ["key":] in a compact-JSON body.  Good
   enough for /stats assertions without a JSON parser: the serving
   section keys we probe don't collide with metric names. *)
let json_int body key =
  let tag = Printf.sprintf "\"%s\":" key in
  match find_sub body tag with
  | None -> Alcotest.failf "no %s in stats" key
  | Some i ->
      let start = i + String.length tag in
      let stop = ref start in
      while !stop < String.length body && (body.[!stop] = '-' || (body.[!stop] >= '0' && body.[!stop] <= '9')) do
        incr stop
      done;
      int_of_string (String.sub body start (!stop - start))

let count_sub hay needle =
  let nn = String.length needle in
  let rec go i acc =
    match find_sub (String.sub hay i (String.length hay - i)) needle with
    | None -> acc
    | Some j -> go (i + j + nn) (acc + 1)
  in
  if nn = 0 then 0 else go 0 0

(* --- server fixture ---------------------------------------------------- *)

(* Run a pooled server for [f port db]; tear everything down after.
   [readers]/[max_lag_ms]/[client_timeout] shape the serving config
   under test. *)
let with_server ?(readers = 2) ?(max_lag_ms = 50.) ?client_timeout f =
  let path = tmp_path () in
  let db = Database.open_ path in
  Taxonomy.Tax_schema.install db;
  let port_box = ref 0 in
  let port_ready = Mutex.create () in
  let cond = Condition.create () in
  let stop = ref false in
  let ready p =
    Mutex.lock port_ready;
    port_box := p;
    Condition.broadcast cond;
    Mutex.unlock port_ready
  in
  let th =
    Thread.create
      (fun () ->
        try
          Pserver.Http_server.serve ~readers ~max_lag_ms ?client_timeout db ~port:0 ~stop ~ready
            ()
        with e -> Printf.eprintf "server died: %s\n%!" (Printexc.to_string e))
      ()
  in
  Mutex.lock port_ready;
  while !port_box = 0 do
    Condition.wait cond port_ready
  done;
  let port = !port_box in
  Mutex.unlock port_ready;
  let stop_server () =
    if not !stop then begin
      stop := true;
      (try ignore (get port "/") with _ -> ());
      Thread.join th
    end
  in
  Fun.protect
    ~finally:(fun () ->
      stop_server ();
      Database.close db;
      cleanup path)
    (fun () -> f ~stop_server port db)

let create_taxon port =
  let r = post port "/create?class=Taxon&rank=genus" in
  Alcotest.(check string) "create ok" "HTTP/1.0 200 OK" (status_of r);
  r

let taxon_query = "/query?q=select%20t.rank%20from%20Taxon%20t"

(* --- read-your-writes -------------------------------------------------- *)

(* With the background refresh effectively disabled (10s lag), only the
   X-PDB-Min-LSN catch-up path can make a write visible on the pool:
   every tokened read after a write must see all rows written so far,
   and its served LSN must never run behind the token. *)
let test_monotonicity () =
  with_server ~readers:2 ~max_lag_ms:10000. (fun ~stop_server:_ port _db ->
      for i = 1 to 20 do
        let w = create_taxon port in
        let l = lsn_of w in
        let r = get ~headers:[ ("X-PDB-Min-LSN", string_of_int l) ] port taxon_query in
        Alcotest.(check string)
          (Printf.sprintf "tokened read %d ok" i)
          "HTTP/1.0 200 OK" (status_of r);
        Alcotest.(check int)
          (Printf.sprintf "read %d sees all writes" i)
          i
          (count_sub (body_of r) "genus");
        let served = lsn_of r in
        if served < l then
          Alcotest.failf "served lsn %d behind token %d on read %d" served l i
      done)

(* A tokened read that no refresh can ever satisfy (the token is far
   beyond the store's LSN) must fall through to the primary handle and
   still answer — and say so in X-PDB-Route. *)
let test_fallthrough () =
  with_server ~readers:1 (fun ~stop_server:_ port _db ->
      ignore (create_taxon port);
      let r = get ~headers:[ ("X-PDB-Min-LSN", "999999999") ] port taxon_query in
      Alcotest.(check string) "fallthrough ok" "HTTP/1.0 200 OK" (status_of r);
      Alcotest.(check int) "fallthrough sees the row" 1 (count_sub (body_of r) "genus");
      Alcotest.(check (option string))
        "routed to primary" (Some "primary")
        (header_of r "X-PDB-Route"))

(* --- refresh lag -------------------------------------------------------- *)

(* An untokened read serves whatever generation is current, but the
   refresher must catch it up within max_lag (plus generous scheduling
   slack): a write becomes visible without any token within 5s. *)
let test_refresh_lag () =
  with_server ~readers:1 ~max_lag_ms:50. (fun ~stop_server:_ port _db ->
      ignore (create_taxon port);
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec poll () =
        let r = get port taxon_query in
        Alcotest.(check string) "poll ok" "HTTP/1.0 200 OK" (status_of r);
        if count_sub (body_of r) "genus" >= 1 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "write not visible on pool within 5s at 50ms max lag"
        else begin
          Thread.delay 0.02;
          poll ()
        end
      in
      poll ())

(* --- generation lifecycle ----------------------------------------------- *)

(* Stopping the server must release every snapshot generation: no live
   snapshot handles remain, and one more commit prunes all pinned page
   versions back to zero. *)
let test_generation_release () =
  with_server ~readers:2 ~max_lag_ms:20. (fun ~stop_server port db ->
      for _ = 1 to 5 do
        ignore (create_taxon port);
        (* give the refresher a chance to turn generations over *)
        Thread.delay 0.05
      done;
      stop_server ();
      let s = Pstore.Store.stats (Database.store db) in
      Alcotest.(check int) "no live snapshots after stop" 0 s.Pstore.Store.snapshots;
      Database.with_tx db (fun () ->
          ignore (Database.create db "Taxon" [ ("rank", Value.VString "species") ]));
      let s = Pstore.Store.stats (Database.store db) in
      Alcotest.(check int) "all pinned versions reclaimed" 0 s.Pstore.Store.pinned_versions)

(* --- group-commit writer ------------------------------------------------ *)

(* Eight concurrent HTTP writers, five creates each: every mutation
   commits exactly once through the group writer, and at least some of
   them share a batch (fewer hard batches than commits would be ideal,
   but timing-dependent — the hard assertions are the exact commit
   count and that batching stayed within bounds). *)
let test_concurrent_writers () =
  with_server ~readers:2 (fun ~stop_server:_ port _db ->
      let writers = 8 and each = 5 in
      let ths =
        List.init writers (fun _ ->
            Thread.create
              (fun () ->
                for _ = 1 to each do
                  ignore (create_taxon port)
                done)
              ())
      in
      List.iter Thread.join ths;
      let stats = body_of (get port "/stats") in
      let commits = json_int stats "commits" in
      let batches = json_int stats "batches" in
      Alcotest.(check int) "every write committed once" (writers * each) commits;
      Alcotest.(check bool) "at least one batch" true (batches >= 1);
      Alcotest.(check bool) "no more batches than commits" true (batches <= commits);
      let r = get port taxon_query in
      Alcotest.(check int)
        "all rows visible eventually" (writers * each)
        (let deadline = Unix.gettimeofday () +. 5.0 in
         let rec poll r =
           let n = count_sub (body_of r) "genus" in
           if n >= writers * each || Unix.gettimeofday () > deadline then n
           else (Thread.delay 0.02; poll (get port taxon_query))
         in
         poll r))

(* --- fault tolerance ---------------------------------------------------- *)

(* A reader job raising must surface to that caller only: the pool keeps
   serving afterwards.  Exercised directly on the Reader_pool API (an
   HTTP /query never raises — the handler turns bad queries into 400s). *)
let test_pool_survives_raising () =
  let path = tmp_path () in
  let db = Database.open_ path in
  Taxonomy.Tax_schema.install db;
  Fun.protect
    ~finally:(fun () ->
      Database.close db;
      cleanup path)
    (fun () ->
      Database.with_tx db (fun () ->
          ignore (Database.create db "Taxon" [ ("rank", Value.VString "genus") ]));
      let pool =
        Pserver.Reader_pool.create ~readers:2 (Pserver.Reader_pool.primary_source db)
      in
      Fun.protect
        ~finally:(fun () -> Pserver.Reader_pool.stop pool)
        (fun () ->
          (match Pserver.Reader_pool.read pool (fun _ -> failwith "boom") with
          | exception Failure m -> Alcotest.(check string) "job exn surfaces" "boom" m
          | _ -> Alcotest.fail "raising job did not raise");
          (* every reader still answers after a job raised *)
          for _ = 1 to 4 do
            match Pserver.Reader_pool.read pool (fun v -> Database.object_count v) with
            | Pserver.Reader_pool.Served (n, _) ->
                Alcotest.(check bool) "pool still serves" true (n >= 1)
            | Pserver.Reader_pool.Behind _ -> Alcotest.fail "unexpected Behind"
          done))

(* The HTTP face of the same property: a malformed query is a 400, and
   the next query on the same pool is a clean 200. *)
let test_bad_query_then_good () =
  with_server ~readers:2 (fun ~stop_server:_ port _db ->
      let bad = get port "/query?q=select%20%24%24garbage" in
      Alcotest.(check string) "bad query rejected" "HTTP/1.0 400 Bad Request" (status_of bad);
      ignore (create_taxon port);
      let r = get ~headers:[ ("X-PDB-Min-LSN", "1") ] port taxon_query in
      Alcotest.(check string) "pool healthy after bad query" "HTTP/1.0 200 OK" (status_of r))

(* --- slowloris guards --------------------------------------------------- *)

(* More headers than the server will hold: 431, connection still torn
   down cleanly (the next request works). *)
let test_header_count_bound () =
  with_server (fun ~stop_server:_ port _db ->
      let b = Buffer.create 4096 in
      Buffer.add_string b "GET / HTTP/1.0\r\n";
      for i = 1 to 150 do
        Buffer.add_string b (Printf.sprintf "X-Pad-%d: x\r\n" i)
      done;
      Buffer.add_string b "\r\n";
      let r = talk_raw port (Buffer.contents b) in
      Alcotest.(check string)
        "header flood rejected" "HTTP/1.0 431 Request Header Fields Too Large" (status_of r);
      let ok = get port "/" in
      Alcotest.(check string) "server healthy after flood" "HTTP/1.0 200 OK" (status_of ok))

(* A header block over the byte bound (few headers, each huge): 431 via
   the total-bytes cap rather than the per-line cap. *)
let test_header_bytes_bound () =
  with_server (fun ~stop_server:_ port _db ->
      let b = Buffer.create (80 * 1024) in
      Buffer.add_string b "GET / HTTP/1.0\r\n";
      (* 17 headers x ~4KiB = ~68KiB > 64KiB total, each line well under
         the 8KiB per-line bound *)
      for i = 1 to 17 do
        Buffer.add_string b (Printf.sprintf "X-Big-%d: %s\r\n" i (String.make 4096 'a'))
      done;
      Buffer.add_string b "\r\n";
      let r = talk_raw port (Buffer.contents b) in
      Alcotest.(check string)
        "oversized header block rejected" "HTTP/1.0 431 Request Header Fields Too Large"
        (status_of r))

(* Trickled headers: keep the per-read socket timeout happy (a byte
   every 100ms) but never finish the header block.  The wall-clock
   deadline across reads must trip: 408. *)
let test_header_trickle_timeout () =
  with_server ~client_timeout:0.5 (fun ~stop_server:_ port _db ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          send_str fd "GET / HTTP/1.0\r\n";
          (try
             for _ = 1 to 10 do
               Thread.delay 0.1;
               send_str fd "X-Trickle: a\r\n"
             done
           with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
             () (* server already gave up on us — expected *));
          let r = recv_all fd in
          Alcotest.(check string)
            "trickler timed out" "HTTP/1.0 408 Request Timeout" (status_of r)))

(* --- serving stats surface ---------------------------------------------- *)

(* /stats grows a "serving" section in pool mode with the pool and
   group counters the operator needs; routed reads count up. *)
let test_serving_stats () =
  with_server ~readers:2 (fun ~stop_server:_ port _db ->
      ignore (create_taxon port);
      ignore (get port taxon_query);
      let body = body_of (get port "/stats") in
      Alcotest.(check bool) "serving section present" true (contains body "\"serving\":");
      Alcotest.(check int) "readers reported" 2 (json_int body "readers");
      Alcotest.(check bool) "routed reads counted" true (json_int body "routed_reads" >= 1);
      Alcotest.(check bool)
        "group writes counted" true
        (json_int body "group_writes" >= 1);
      let r = get port taxon_query in
      Alcotest.(check (option string)) "pool route header" (Some "pool")
        (header_of r "X-PDB-Route"))

let () =
  Alcotest.run "serving"
    [
      ( "read-your-writes",
        [
          Alcotest.test_case "lsn token monotonicity" `Slow test_monotonicity;
          Alcotest.test_case "unreachable token falls through" `Quick test_fallthrough;
        ] );
      ("refresh", [ Alcotest.test_case "lag bound" `Quick test_refresh_lag ]);
      ( "lifecycle",
        [ Alcotest.test_case "generations released on stop" `Quick test_generation_release ]
      );
      ( "group-writer",
        [ Alcotest.test_case "concurrent writers batch" `Slow test_concurrent_writers ] );
      ( "faults",
        [
          Alcotest.test_case "pool survives raising job" `Quick test_pool_survives_raising;
          Alcotest.test_case "bad query then good" `Quick test_bad_query_then_good;
        ] );
      ( "slowloris",
        [
          Alcotest.test_case "header count bound" `Quick test_header_count_bound;
          Alcotest.test_case "header bytes bound" `Quick test_header_bytes_bound;
          Alcotest.test_case "trickle timeout" `Slow test_header_trickle_timeout;
        ] );
      ("stats", [ Alcotest.test_case "serving section" `Quick test_serving_stats ]);
    ]
